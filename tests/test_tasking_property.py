"""Property-based tests of the tasking runtime's ordering guarantees.

For arbitrary task graphs, any two tasks with conflicting accesses to the
same handle (write-write, write-read, read-write — but not read-read and
not commutative-commutative) must execute in their registration order.
Non-conflicting tasks may run in any order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CostSpec
from repro.simx import Environment
from repro.tasking import RankRuntime
from repro.tasking.task import AccessMode

FREE = CostSpec(
    task_spawn_overhead=0.0,
    task_dispatch_overhead=0.0,
    noise_amplitude=0.0,
    noise_spike_rate=0.0,
)

HANDLES = ["h0", "h1", "h2"]
MODES = [AccessMode.IN, AccessMode.OUT, AccessMode.INOUT,
         AccessMode.COMMUTATIVE]

access_strategy = st.lists(
    st.tuples(
        st.sampled_from(MODES),
        st.integers(min_value=0, max_value=len(HANDLES) - 1),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda mh: mh[1],  # one access per handle per task
)

graph_strategy = st.lists(access_strategy, min_size=2, max_size=12)


def conflicts(acc_a, acc_b):
    """Whether two access lists conflict on any shared handle."""
    by_handle_a = {h: m for m, h in acc_a}
    for mode_b, handle in acc_b:
        mode_a = by_handle_a.get(handle)
        if mode_a is None:
            continue
        if mode_a is AccessMode.IN and mode_b is AccessMode.IN:
            continue
        if (
            mode_a is AccessMode.COMMUTATIVE
            and mode_b is AccessMode.COMMUTATIVE
        ):
            continue
        return True
    return False


@settings(max_examples=120, deadline=None)
@given(graph=graph_strategy, cores=st.integers(min_value=1, max_value=4))
def test_property_conflicting_tasks_keep_registration_order(graph, cores):
    env = Environment()
    rt = RankRuntime(env, num_cores=cores, cost_spec=FREE)
    order = []

    def body(i):
        def run():
            order.append(i)

        return run

    def main():
        for i, accesses in enumerate(graph):
            ins = [HANDLES[h] for m, h in accesses if m is AccessMode.IN]
            outs = [HANDLES[h] for m, h in accesses if m is AccessMode.OUT]
            inouts = [
                HANDLES[h] for m, h in accesses if m is AccessMode.INOUT
            ]
            comm = [
                HANDLES[h] for m, h in accesses
                if m is AccessMode.COMMUTATIVE
            ]
            yield from rt.spawn(
                f"t{i}", cost=0.0, body=body(i),
                ins=ins, outs=outs, inouts=inouts, commutatives=comm,
            )
        yield from rt.taskwait()

    proc = env.process(main())
    env.run(until=proc)

    # Every task ran exactly once.
    assert sorted(order) == list(range(len(graph)))

    # Conflicting pairs execute in registration order.
    position = {task: idx for idx, task in enumerate(order)}
    for a in range(len(graph)):
        for b in range(a + 1, len(graph)):
            if conflicts(graph[a], graph[b]):
                assert position[a] < position[b], (
                    f"task {b} ran before conflicting task {a}: {order}"
                )


@settings(max_examples=60, deadline=None)
@given(
    graph=graph_strategy,
    cores=st.integers(min_value=1, max_value=4),
)
def test_property_runtime_always_drains(graph, cores):
    """No combination of accesses deadlocks the runtime."""
    env = Environment()
    rt = RankRuntime(env, num_cores=cores, cost_spec=FREE)
    executed = []

    def main():
        for i, accesses in enumerate(graph):
            handles = {}
            for m, h in accesses:
                handles.setdefault(m, []).append(HANDLES[h])
            yield from rt.spawn(
                f"t{i}",
                cost=1e-6,
                body=lambda i=i: executed.append(i),
                ins=handles.get(AccessMode.IN, ()),
                outs=handles.get(AccessMode.OUT, ()),
                inouts=handles.get(AccessMode.INOUT, ()),
                commutatives=handles.get(AccessMode.COMMUTATIVE, ()),
            )
        yield from rt.taskwait()

    proc = env.process(main())
    env.run(until=proc)
    assert len(executed) == len(graph)
    assert rt.outstanding == 0

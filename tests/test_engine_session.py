"""EngineSession (incremental admission) and graceful engine shutdown."""

import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro import AmrConfig, RunSpec, sphere
from repro.exec import EngineSession, ResultCache, SweepEngine, run_spec_dict
from repro.obs.telemetry import TelemetryBus, read_records, validate_file


def small_spec(variant="mpi_only", **overrides):
    cfg_kwargs = dict(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    cfg_kwargs.update(overrides)
    return RunSpec(
        config=AmrConfig(**cfg_kwargs), machine="laptop",
        variant=variant, ranks_per_node=2,
    )


def _sleep_forever_runner(spec_dict):
    time.sleep(600)


def _holding_runner(spec_dict):
    hold = Path(os.environ["REPRO_EXEC_TEST_DIR"]) / "HOLD"
    while hold.exists():
        time.sleep(0.02)
    return run_spec_dict(spec_dict)


def pump(session, *, until, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        session.poll()
        if until():
            return
        time.sleep(0.01)
    raise AssertionError("session condition not reached in time")


# ----------------------------------------------------------------------
# Session basics
# ----------------------------------------------------------------------
def test_session_executes_and_matches_run(tmp_path):
    specs = [small_spec(variant=v)
             for v in ("mpi_only", "fork_join", "tampi_dataflow")]
    serial = SweepEngine(jobs=1).run(specs)

    engine = SweepEngine(jobs=2, cache=ResultCache(tmp_path / "cache"))
    session = engine.session()
    tickets = [session.submit(spec) for spec in specs]
    pump(session, until=lambda: session.active == 0)
    outcomes = [session.outcome(t) for t in tickets]
    assert [o.status for o in outcomes] == ["ok", "ok", "ok"]
    # Always-subprocess execution reproduces in-process results exactly.
    assert [o.result for o in outcomes] == serial.results
    # Completed runs are stored to the shared cache.
    for spec in specs:
        assert engine.cache.get(spec.fingerprint()) is not None
    session.close()


def test_session_priority_orders_launches(tmp_path):
    engine = SweepEngine(jobs=1)
    session = engine.session()
    low = session.submit(small_spec(checksum_freq=2), priority=0.0)
    high = session.submit(small_spec(checksum_freq=3), priority=5.0)
    mid = session.submit(small_spec(checksum_freq=4), priority=1.0)
    pump(session, until=lambda: session.active == 0)
    # jobs=1 launches strictly one at a time, highest priority first —
    # queue wait times therefore order by descending priority.
    order = sorted(
        (low, high, mid),
        key=lambda t: session.outcome(t).wait_time,
    )
    assert order[0] == high
    assert order[1] == mid
    assert order[2] == low
    session.close()


def test_session_aging_prevents_starvation():
    engine = SweepEngine(jobs=1)
    # Enormous aging rate: one queued second outweighs any base priority.
    session = engine.session(aging_rate=1000.0)
    old = session.submit(small_spec(checksum_freq=2), priority=0.0)
    time.sleep(0.15)
    young = session.submit(small_spec(checksum_freq=3), priority=5.0)
    started = []
    deadline = time.monotonic() + 30
    while session.active and time.monotonic() < deadline:
        started.extend(session.poll().started)
        time.sleep(0.01)
    # The older low-priority job out-ages the younger high-priority one.
    assert started[0] == old
    session.close()


def test_session_cancel_queued_and_running(tmp_path, monkeypatch):
    marker = tmp_path / "markers"
    marker.mkdir()
    monkeypatch.setenv("REPRO_EXEC_TEST_DIR", str(marker))
    (marker / "HOLD").touch()
    engine = SweepEngine(jobs=1, runner=_holding_runner)
    session = engine.session()
    running = session.submit(small_spec(checksum_freq=2))
    queued = session.submit(small_spec(checksum_freq=3))
    pump(session, until=lambda: session.busy_slots == 1)

    # Queued: canceled immediately, no subprocess ever existed.
    assert session.cancel(queued) is True
    outcome = session.outcome(queued)
    assert outcome.status == "canceled"
    assert outcome.error == "canceled while queued"
    assert outcome.worker_id is None

    # Running: terminate lands on the next poll.
    assert session.cancel(running) is True
    pump(session, until=lambda: session.outcome(running) is not None)
    outcome = session.outcome(running)
    assert outcome.status == "canceled"
    assert outcome.error == "canceled while running"
    # The worker process is gone, not orphaned.
    assert session.busy_slots == 0
    assert session.cancel(running) is False  # already terminal
    session.close()


def test_session_close_cancels_and_emits_stream(tmp_path, monkeypatch):
    marker = tmp_path / "markers"
    marker.mkdir()
    monkeypatch.setenv("REPRO_EXEC_TEST_DIR", str(marker))
    (marker / "HOLD").touch()
    stream = tmp_path / "session.jsonl"
    engine = SweepEngine(
        jobs=1, runner=_holding_runner, telemetry=TelemetryBus(stream),
    )
    session = engine.session()
    first = session.submit(small_spec(checksum_freq=2), tenant="alice")
    second = session.submit(small_spec(checksum_freq=3), tenant="bob")
    pump(session, until=lambda: session.busy_slots == 1)
    session.close()
    assert session.outcome(first).status == "canceled"
    assert session.outcome(second).status == "canceled"
    with pytest.raises(RuntimeError, match="closed"):
        session.submit(small_spec())

    assert validate_file(stream) > 0
    records = read_records(stream)
    types = [r["type"] for r in records]
    assert types[0] == "engine_start"
    assert records[0]["graph"] == "session"
    assert types[-1] == "engine_stop"
    assert records[-1]["canceled"] == 2
    # Tenant attribution rides on the session's job records.
    queued = [r for r in records if r["type"] == "job_queued"]
    assert {r.get("tenant") for r in queued} == {"alice", "bob"}


# ----------------------------------------------------------------------
# Graceful shutdown of SweepEngine.run (satellite b)
# ----------------------------------------------------------------------
def test_request_shutdown_drains_and_blocks(tmp_path):
    stream = tmp_path / "shutdown.jsonl"
    engine = SweepEngine(
        jobs=2, runner=_sleep_forever_runner, retries=0,
        drain_timeout=0.5, telemetry=TelemetryBus(stream),
    )
    specs = [small_spec(checksum_freq=2 + i) for i in range(4)]
    timer = threading.Timer(0.7, engine.request_shutdown)
    timer.start()
    try:
        report = engine.run(specs)
    finally:
        timer.cancel()
    statuses = sorted(o.status for o in report.outcomes)
    # Two in-flight runs were terminated after the drain budget; the
    # two never-launched ones are blocked with the distinct reason.
    assert statuses == ["blocked", "blocked", "failed", "failed"]
    for outcome in report.outcomes:
        if outcome.status == "blocked":
            assert outcome.error == "blocked: engine shutdown"
        else:
            assert "engine shutdown" in outcome.error
    # No orphaned worker processes survive run().
    import multiprocessing

    assert not [
        p for p in multiprocessing.active_children() if p.is_alive()
    ]
    # The terminal engine_stop record names the shutdown.
    records = read_records(stream)
    stops = [r for r in records if r["type"] == "engine_stop"]
    assert len(stops) == 1
    assert stops[0]["reason"] == "shutdown"
    assert stops[0]["blocked"] == 2
    blocked = [r for r in records if r["type"] == "job_blocked"]
    assert {r["blocker"] for r in blocked} == {"<shutdown>"}


def test_shutdown_flag_resets_between_runs():
    engine = SweepEngine(jobs=1)
    engine.request_shutdown()
    # A fresh run() must not be stillborn from a stale flag.
    report = engine.run([small_spec()])
    assert report.outcomes[0].status == "ok"


def test_signal_handlers_trigger_shutdown_and_restore():
    engine = SweepEngine(jobs=1)
    original = signal.getsignal(signal.SIGTERM)
    previous = engine._install_signal_handlers()
    try:
        handler = signal.getsignal(signal.SIGTERM)
        assert handler is not original
        handler(signal.SIGTERM, None)
        assert engine._shutdown is True
    finally:
        engine._restore_signal_handlers(previous)
    assert signal.getsignal(signal.SIGTERM) is original

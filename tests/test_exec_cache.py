"""ResultCache: hit/miss semantics, corruption handling, atomicity."""

import json

import pytest

from repro import AmrConfig, RunSpec, run_simulation, sphere
from repro.exec import ResultCache


@pytest.fixture(scope="module")
def spec():
    cfg = AmrConfig(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    return RunSpec(config=cfg, machine="laptop", variant="tampi_dataflow",
                   ranks_per_node=2)


@pytest.fixture(scope="module")
def result(spec):
    return run_simulation(spec)


def test_miss_on_empty_cache(tmp_path, spec):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(spec.fingerprint()) is None
    assert len(cache) == 0


def test_put_then_hit(tmp_path, spec, result):
    cache = ResultCache(tmp_path / "cache")
    fp = spec.fingerprint()
    cache.put(fp, spec, result)
    assert fp in cache
    assert len(cache) == 1
    assert cache.get(fp) == result


def test_entry_is_sharded_and_self_describing(tmp_path, spec, result):
    cache = ResultCache(tmp_path / "cache")
    fp = spec.fingerprint()
    cache.put(fp, spec, result)
    path = cache.path(fp)
    assert path.parent.name == fp[:2]
    envelope = json.loads(path.read_text())
    assert envelope["fingerprint"] == fp
    assert RunSpec.from_dict(envelope["spec"]) == spec


def test_corrupt_entry_is_a_miss_and_removed(tmp_path, spec, result):
    cache = ResultCache(tmp_path / "cache")
    fp = spec.fingerprint()
    cache.put(fp, spec, result)
    cache.path(fp).write_text("{ not json !!!")
    assert cache.get(fp) is None
    assert not cache.path(fp).exists()


def test_non_dict_envelope_is_a_miss_and_removed(tmp_path, spec, result):
    """A JSON file whose top level is not an object (a list here) must be
    treated as a corrupt entry, not crash with AttributeError."""
    cache = ResultCache(tmp_path / "cache")
    fp = spec.fingerprint()
    cache.put(fp, spec, result)
    cache.path(fp).write_text(json.dumps([1, 2, 3]))
    assert cache.get(fp) is None
    assert not cache.path(fp).exists()


def test_corrupt_entry_logs_a_warning(tmp_path, spec, result, caplog):
    import logging

    cache = ResultCache(tmp_path / "cache")
    fp = spec.fingerprint()
    cache.put(fp, spec, result)
    cache.path(fp).write_text("{ not json !!!")
    with caplog.at_level(logging.WARNING, logger="repro.exec.cache"):
        assert cache.get(fp) is None
    assert any("corrupt cache entry" in r.message for r in caplog.records)


def test_truncated_entry_is_a_miss(tmp_path, spec, result):
    cache = ResultCache(tmp_path / "cache")
    fp = spec.fingerprint()
    cache.put(fp, spec, result)
    blob = cache.path(fp).read_text()
    cache.path(fp).write_text(blob[: len(blob) // 2])
    assert cache.get(fp) is None


def test_fingerprint_mismatch_is_a_miss(tmp_path, spec, result):
    cache = ResultCache(tmp_path / "cache")
    fp = spec.fingerprint()
    cache.put(fp, spec, result)
    envelope = json.loads(cache.path(fp).read_text())
    envelope["fingerprint"] = "0" * 64
    cache.path(fp).write_text(json.dumps(envelope))
    assert cache.get(fp) is None


def test_no_temp_files_left_behind(tmp_path, spec, result):
    cache = ResultCache(tmp_path / "cache")
    cache.put(spec.fingerprint(), spec, result)
    leftovers = [
        p for p in (tmp_path / "cache").rglob("*")
        if p.is_file() and not p.name.endswith(".json")
    ]
    assert leftovers == []


def test_clear(tmp_path, spec, result):
    cache = ResultCache(tmp_path / "cache")
    cache.put(spec.fingerprint(), spec, result)
    cache.clear()
    assert len(cache) == 0
    assert cache.get(spec.fingerprint()) is None


def test_version_bump_changes_fingerprint_and_misses(
    monkeypatch, tmp_path, spec, result
):
    """A package upgrade must invalidate cached results: the fingerprint
    embeds ``repro.__version__``, so the same spec misses after a bump."""
    import repro

    cache = ResultCache(tmp_path / "cache")
    old_fp = spec.fingerprint()
    cache.put(old_fp, spec, result)
    assert cache.get(old_fp) == result

    monkeypatch.setattr(repro, "__version__", "999.0.0")
    new_fp = spec.fingerprint()
    assert new_fp != old_fp
    assert cache.get(new_fp) is None  # stale entry is not served
    assert cache.get(old_fp) == result  # ...but remains addressable


def test_sweep_engine_parallel_matches_serial_on_fuzz_seeds(spec):
    """A fuzz-seed sweep is the worst case for worker-process isolation
    (every run perturbs the schedule); jobs=1 and jobs>1 must agree."""
    from repro.exec import Sweep, SweepEngine
    from repro.verify import fuzz_specs, invariants

    specs = [spec] + fuzz_specs(spec, range(3))
    serial = SweepEngine(jobs=1).run(Sweep(specs, name="fuzz"))
    parallel = SweepEngine(jobs=2).run(Sweep(specs, name="fuzz"))
    assert not serial.failed and not parallel.failed
    for a, b in zip(serial.outcomes, parallel.outcomes):
        assert a.fingerprint == b.fingerprint
        assert a.result.total_time == b.result.total_time
        assert invariants(a.result) == invariants(b.result)


# ----------------------------------------------------------------------
# Concurrent multi-process hardening (readers race writers on one root)
# ----------------------------------------------------------------------
def test_abandoned_partial_write_is_invisible(tmp_path, spec, result):
    """A writer that died between mkstemp and replace leaves a
    ``.tmp-*.part`` file; it must not count as an entry, must read as a
    miss, and ``clear()`` must sweep it."""
    cache = ResultCache(tmp_path / "cache")
    fp = spec.fingerprint()
    cache.put(fp, spec, result)
    shard = cache.path(fp).parent
    orphan = shard / ".tmp-deadbeef.part"
    orphan.write_text('{"half": "written')

    assert len(cache) == 1  # the orphan is not an entry
    assert cache.get(fp) == result  # ...and does not shadow real reads
    cache.clear()
    assert not orphan.exists()
    assert len(cache) == 0


def test_publish_is_atomic_under_concurrent_readers(tmp_path, spec, result):
    """Hammer get() from threads while put() republishes the same entry:
    every read must be either a full hit or a clean miss, never a
    torn/partial decode (which would log + delete the good entry)."""
    import threading

    cache = ResultCache(tmp_path / "cache")
    fp = spec.fingerprint()
    stop = threading.Event()
    bad = []

    def reader():
        local = ResultCache(tmp_path / "cache")
        while not stop.is_set():
            got = local.get(fp)
            if got is not None and got != result:
                bad.append(got)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        for _ in range(50):
            cache.put(fp, spec, result)
    finally:
        stop.set()
        for t in threads:
            t.join()
    assert bad == []
    assert cache.get(fp) == result


def test_corrupt_unlink_is_inode_guarded(tmp_path, spec, result):
    """If another process republishes a good entry between our corrupt
    read and our unlink, the new file must survive."""
    import os

    cache = ResultCache(tmp_path / "cache")
    fp = spec.fingerprint()
    cache.put(fp, spec, result)
    path = cache.path(fp)

    real_stat = os.stat

    def racing_stat(p, *a, **k):
        # Simulate the race: by the time the reader stats the path for
        # its unlink guard, a concurrent writer has already replaced the
        # corrupt file with a fresh (different-inode) good entry.
        st = real_stat(p, *a, **k)
        if str(p) == str(path):
            cache.put(fp, spec, result)
            return real_stat(p, *a, **k)
        return st

    path.write_text("{ torn")
    inode_before = real_stat(path).st_ino
    import unittest.mock

    with unittest.mock.patch("repro.exec.cache.os.stat", racing_stat):
        assert cache.get(fp) is None  # the torn read is a miss...
    assert path.exists()  # ...but the republished entry survives
    assert real_stat(path).st_ino != inode_before
    assert cache.get(fp) == result

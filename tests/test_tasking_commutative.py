"""Tests for OmpSs-2 commutative dependencies (mutual exclusion, any order)."""

import pytest

from repro.machine import CostSpec
from repro.simx import Environment
from repro.tasking import RankRuntime

FREE = CostSpec(
    task_spawn_overhead=0.0,
    task_dispatch_overhead=0.0,
    noise_amplitude=0.0,
    noise_spike_rate=0.0,
)


def make_runtime(num_cores=4):
    env = Environment()
    rt = RankRuntime(env, num_cores=num_cores, cost_spec=FREE)
    return env, rt


def run_main(env, gen):
    proc = env.process(gen)
    env.run(until=proc)


def test_commutative_tasks_are_mutually_exclusive():
    env, rt = make_runtime(num_cores=4)
    active = []
    overlap = []

    def body(name):
        def run():
            overlap.append(len(active))
            active.append(name)

        return run

    def main():
        for i in range(4):
            yield from rt.spawn(
                f"c{i}", cost=1.0, commutatives=["acc"],
                body=self_pop(active, body(i)),
            )
        yield from rt.taskwait()

    def self_pop(active_list, enter):
        # enter() records; exiting happens when the task body returns —
        # model by checking active length at entry only.
        return enter

    run_main(env, main())
    # With mutual exclusion, each body sees an empty-or-self active set —
    # serialized execution means total time is 4 seconds.
    assert env.now == pytest.approx(4.0)


def test_commutative_serializes_but_parallel_elsewhere():
    env, rt = make_runtime(num_cores=4)

    def main():
        # Four commutative tasks on one handle + four independent tasks.
        for i in range(4):
            yield from rt.spawn(f"c{i}", cost=1.0, commutatives=["acc"])
        for i in range(4):
            yield from rt.spawn(f"free{i}", cost=1.0)
        yield from rt.taskwait()

    run_main(env, main())
    # The commutative chain (4s) dominates; independents run alongside.
    assert env.now == pytest.approx(4.0)


def test_commutative_vs_inout_ordering():
    """A writer before the group runs first; a writer after runs last."""
    env, rt = make_runtime(num_cores=4)
    order = []

    def main():
        yield from rt.spawn("w1", cost=1.0, outs=["acc"],
                            body=lambda: order.append("w1"))
        for i in range(3):
            yield from rt.spawn(f"c{i}", cost=1.0, commutatives=["acc"],
                                body=lambda i=i: order.append(f"c{i}"))
        yield from rt.spawn("w2", cost=1.0, inouts=["acc"],
                            body=lambda: order.append("w2"))
        yield from rt.taskwait()

    run_main(env, main())
    assert order[0] == "w1"
    assert order[-1] == "w2"
    assert set(order[1:4]) == {"c0", "c1", "c2"}


def test_commutative_reader_ordering():
    """Readers registered before the group precede it; readers after wait."""
    env, rt = make_runtime(num_cores=4)
    order = []

    def main():
        yield from rt.spawn("w", cost=1.0, outs=["acc"])
        yield from rt.spawn("r-before", cost=1.0, ins=["acc"],
                            body=lambda: order.append("r-before"))
        yield from rt.spawn("c", cost=1.0, commutatives=["acc"],
                            body=lambda: order.append("c"))
        yield from rt.spawn("r-after", cost=1.0, ins=["acc"],
                            body=lambda: order.append("r-after"))
        yield from rt.taskwait()

    run_main(env, main())
    assert order.index("r-before") < order.index("c")
    assert order.index("c") < order.index("r-after")


def test_commutative_multiple_handles_no_deadlock():
    """Tasks taking overlapping lock sets complete (all-or-nothing)."""
    env, rt = make_runtime(num_cores=4)
    done = []

    def main():
        yield from rt.spawn("ab", cost=1.0, commutatives=["a", "b"],
                            body=lambda: done.append("ab"))
        yield from rt.spawn("bc", cost=1.0, commutatives=["b", "c"],
                            body=lambda: done.append("bc"))
        yield from rt.spawn("ca", cost=1.0, commutatives=["c", "a"],
                            body=lambda: done.append("ca"))
        yield from rt.taskwait()

    run_main(env, main())
    assert sorted(done) == ["ab", "bc", "ca"]
    # Pairwise lock conflicts force full serialization here.
    assert env.now == pytest.approx(3.0)


def test_commutative_group_total_time_parallel_groups():
    """Two disjoint commutative groups proceed concurrently."""
    env, rt = make_runtime(num_cores=4)

    def main():
        for i in range(3):
            yield from rt.spawn(f"g1-{i}", cost=1.0, commutatives=["g1"])
        for i in range(3):
            yield from rt.spawn(f"g2-{i}", cost=1.0, commutatives=["g2"])
        yield from rt.taskwait()

    run_main(env, main())
    assert env.now == pytest.approx(3.0)  # groups overlap, each serial


def test_functional_commutative_accumulation():
    """Commutative accumulation produces the same result in any order."""
    env, rt = make_runtime(num_cores=4)
    acc = {"value": 0.0, "concurrent": 0, "max_concurrent": 0}

    def add(x):
        def run():
            acc["value"] += x

        return run

    def main():
        for x in (1.0, 2.0, 3.0, 4.0, 5.0):
            yield from rt.spawn(f"add{x}", cost=0.5,
                                commutatives=["sum"], body=add(x))
        yield from rt.taskwait()

    run_main(env, main())
    assert acc["value"] == pytest.approx(15.0)

"""Property tests for the tuner (hypothesis).

Three laws the design-space engine must hold everywhere, not just on
the committed presets: strategies only ever emit assignments that live
inside the declared space (and the RunSpecs they materialize into stay
in-space too), successive-halving promotion is monotone in the observed
objective, and an identical ``TuneSpec`` + seed yields a byte-identical
``TuneReport`` whether or not a result cache sits in between.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AmrConfig, RunSpec, sphere
from repro.exec import ResultCache, SweepEngine
from repro.tune import (
    GridStrategy,
    RandomStrategy,
    SuccessiveHalving,
    TuneSpec,
    canonical_key,
    enumerate_space,
    materialize,
    run_tune,
)

#: Axis -> the value pool property cases draw from (all feasible on the
#: 4-rank base grid below, so materialization never filters them out).
AXIS_POOLS = {
    "variant": ("mpi_only", "fork_join", "tampi_dataflow"),
    "scheduler": ("locality", "fifo", "fuzz"),
    "ranks_per_node": (1, 2, 4),
    "nx": (4, 6, 8),
    "pdes_workers": (1, 2),
    "max_comm_tasks": (0, 1, 2),
}


def base_spec():
    cfg = AmrConfig(
        npx=2, npy=1, npz=1, init_x=2, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1, stages_per_ts=4,
        refine_freq=2, checksum_freq=4, max_refine_level=1,
        payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    return RunSpec(
        config=cfg, machine="laptop", variant="tampi_dataflow",
        num_nodes=1, ranks_per_node=2,
    )


@st.composite
def spaces(draw, max_axes=3):
    axes = draw(st.lists(
        st.sampled_from(sorted(AXIS_POOLS)),
        unique=True, min_size=1, max_size=max_axes,
    ))
    return {
        axis: tuple(draw(st.lists(
            st.sampled_from(AXIS_POOLS[axis]),
            unique=True, min_size=1, max_size=3,
        )))
        for axis in axes
    }


def in_space(assignment, space):
    return (
        set(assignment) == set(space)
        and all(assignment[a] in space[a] for a in assignment)
    )


# ----------------------------------------------------------------------
# Law 1: strategies only emit in-space assignments (and in-space specs)
# ----------------------------------------------------------------------
@given(space=spaces(), budget=st.integers(0, 12))
def test_grid_plan_stays_in_space_and_accounts_for_truncation(
    space, budget
):
    candidates = enumerate_space(space)
    strategy = GridStrategy(candidates, budget)
    assert all(in_space(a, space) for a in strategy.plan)
    keys = [canonical_key(a) for a in strategy.plan]
    assert len(set(keys)) == len(keys)
    assert len(strategy.plan) + strategy.truncated == len(candidates)
    if budget:
        assert len(strategy.plan) <= budget


@given(space=spaces(), budget=st.integers(1, 12), seed=st.integers(0, 99))
def test_random_plan_stays_in_space_without_replacement(
    space, budget, seed
):
    candidates = enumerate_space(space)
    strategy = RandomStrategy(candidates, budget, seed)
    assert all(in_space(a, space) for a in strategy.plan)
    keys = [canonical_key(a) for a in strategy.plan]
    assert len(set(keys)) == len(keys)
    assert len(strategy.plan) == min(budget, len(candidates))
    again = RandomStrategy(candidates, budget, seed)
    assert again.plan == strategy.plan


@given(space=spaces(), seed=st.integers(0, 99))
def test_halving_initial_rung_stays_in_space(space, seed):
    candidates = enumerate_space(space)
    strategy = SuccessiveHalving(
        candidates, budget=2 * len(candidates), seed=seed,
        tiers=(0.5, 1.0), eta=2, minimize=True,
    )
    rung = strategy.initial()
    assert all(in_space(a, space) for a in rung)
    keys = [canonical_key(a) for a in rung]
    assert len(set(keys)) == len(keys)
    assert strategy.rung_sizes[0] == len(rung)
    assert sum(strategy.rung_sizes) <= 2 * len(candidates)


@given(space=spaces(max_axes=2), seed=st.integers(0, 99))
def test_materialized_candidates_realize_their_assignment(space, seed):
    tune = TuneSpec(base=base_spec(), space=space)
    for assignment in enumerate_space(space):
        spec = materialize(tune, assignment)
        for axis, value in assignment.items():
            if axis == "nx":
                assert (spec.config.nx, spec.config.ny,
                        spec.config.nz) == (value, value, value)
            elif axis == "max_comm_tasks":
                assert spec.config.max_comm_tasks == value
            elif axis == "ranks_per_node":
                assert spec.ranks_per_node == value
                assert spec.config.num_ranks == (
                    spec.num_nodes * value
                )
                assert spec.config.root_dims == (
                    tune.base.config.root_dims
                )
            else:
                assert getattr(spec, axis) == value


# ----------------------------------------------------------------------
# Law 2: halving promotion is monotone in the observed objective
# ----------------------------------------------------------------------
@given(
    scores=st.lists(
        st.one_of(
            st.none(),
            st.floats(0.001, 1000, allow_nan=False, allow_infinity=False),
        ),
        min_size=2, max_size=12,
    ),
    minimize=st.booleans(),
)
def test_promotion_is_monotone_in_observed_score(scores, minimize):
    candidates = [{"max_comm_tasks": i} for i in range(len(scores))]
    strategy = SuccessiveHalving(
        candidates, budget=2 * len(candidates), seed=0,
        tiers=(0.5, 1.0), eta=2, minimize=minimize,
    )
    scored = list(zip(candidates, scores))
    promoted = {
        canonical_key(a) for a in strategy.promote(scored, 0)
    }
    assert len(promoted) == strategy.rung_sizes[1]

    def better(a, b):  # strictly better observed score
        return a < b if minimize else a > b

    for assignment, score in scored:
        if canonical_key(assignment) in promoted or score is None:
            continue
        # A non-promoted scored candidate must not beat any promotee.
        for other, other_score in scored:
            if canonical_key(other) not in promoted:
                continue
            assert other_score is not None  # failures never outrank
            assert not better(score, other_score)


@given(
    scores=st.lists(
        st.floats(0.001, 1000, allow_nan=False, allow_infinity=False),
        min_size=2, max_size=12,
    ),
    minimize=st.booleans(),
)
def test_promotion_is_deterministic_under_ties(scores, minimize):
    candidates = [{"max_comm_tasks": i} for i in range(len(scores))]
    strategy = SuccessiveHalving(
        candidates, budget=2 * len(candidates), seed=0,
        tiers=(0.5, 1.0), eta=2, minimize=minimize,
    )
    scored = list(zip(candidates, scores))
    first = strategy.promote(scored, 0)
    # Ties break on the canonical key, so the input order is irrelevant.
    assert strategy.promote(list(reversed(scored)), 0) == first
    assert strategy.promote(scored, 0) == first


# ----------------------------------------------------------------------
# Law 3: identical TuneSpec + seed => byte-identical report, cache or no
# ----------------------------------------------------------------------
@settings(max_examples=4, deadline=None)
@given(
    strategy=st.sampled_from(("grid", "random", "halving")),
    seed=st.integers(0, 3),
)
def test_identical_tune_is_byte_identical_cache_on_and_off(
    tmp_path_factory, strategy, seed
):
    tune = TuneSpec(
        base=base_spec(),
        space={"variant": ("mpi_only", "fork_join", "tampi_dataflow")},
        strategy=strategy,
        budget=0 if strategy == "grid" else 4,
        seed=seed,
    )
    uncached = run_tune(tune, engine=SweepEngine(jobs=1)).to_json()
    cache = ResultCache(tmp_path_factory.mktemp("tune-cache"))
    cold = run_tune(tune, engine=SweepEngine(jobs=1, cache=cache))
    warm = run_tune(tune, engine=SweepEngine(jobs=1, cache=cache))
    assert cold.to_json() == uncached
    assert warm.to_json() == uncached
    assert json.loads(uncached)["seed"] == seed

"""Tests for moving objects, intersection classification, and movement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.objects import (
    Classification,
    MovingObject,
    ObjectSpec,
    Shape,
    sphere,
)

INSIDE = Classification.INSIDE
OUTSIDE = Classification.OUTSIDE
SURFACE = Classification.SURFACE


def obj(shape, center=(0.5, 0.5, 0.5), size=(0.2, 0.2, 0.2), **kw):
    return MovingObject(ObjectSpec(shape=shape, center=center, size=size, **kw))


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_spec_rejects_bad_center():
    with pytest.raises(ValueError):
        ObjectSpec(shape=Shape.SOLID_SPHEROID, center=(0.5, 0.5), size=(1, 1, 1))


def test_spec_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        ObjectSpec(
            shape=Shape.SOLID_SPHEROID, center=(0.5, 0.5, 0.5), size=(0, 1, 1)
        )


def test_shape_solid_flag():
    assert Shape.SOLID_SPHEROID.solid
    assert not Shape.SURFACE_SPHEROID.solid
    assert Shape.SOLID_CYLINDER_Z.solid


# ----------------------------------------------------------------------
# Spheroid classification
# ----------------------------------------------------------------------
def test_spheroid_block_far_away_outside():
    o = obj(Shape.SURFACE_SPHEROID)
    assert o.classify(((0.9, 1.0), (0.9, 1.0), (0.9, 1.0))) is OUTSIDE


def test_spheroid_block_at_center_inside():
    o = obj(Shape.SURFACE_SPHEROID)
    b = ((0.45, 0.55), (0.45, 0.55), (0.45, 0.55))
    assert o.classify(b) is INSIDE


def test_spheroid_block_crossing_boundary_surface():
    o = obj(Shape.SURFACE_SPHEROID)
    b = ((0.6, 0.8), (0.45, 0.55), (0.45, 0.55))  # crosses x = 0.7 shell
    assert o.classify(b) is SURFACE


def test_surface_spheroid_refines_only_surface():
    o = obj(Shape.SURFACE_SPHEROID)
    assert o.refine_trigger(((0.6, 0.8), (0.45, 0.55), (0.45, 0.55)))
    assert not o.refine_trigger(((0.45, 0.55),) * 3)  # inside, hollow
    assert not o.refine_trigger(((0.9, 1.0),) * 3)


def test_solid_spheroid_refines_interior_too():
    o = obj(Shape.SOLID_SPHEROID)
    assert o.refine_trigger(((0.45, 0.55),) * 3)


# ----------------------------------------------------------------------
# Rectangle classification
# ----------------------------------------------------------------------
def test_rectangle_classifications():
    o = obj(Shape.SURFACE_RECTANGLE)
    assert o.classify(((0.0, 0.2), (0.0, 0.2), (0.0, 0.2))) is OUTSIDE
    assert o.classify(((0.4, 0.6), (0.4, 0.6), (0.4, 0.6))) is INSIDE
    assert o.classify(((0.2, 0.4), (0.4, 0.6), (0.4, 0.6))) is SURFACE


# ----------------------------------------------------------------------
# Hemisphere classification
# ----------------------------------------------------------------------
def test_hemisphere_positive_x():
    o = obj(Shape.SURFACE_HEMISPHERE_PX)
    # Block entirely on the negative-x side of center: outside.
    assert o.classify(((0.2, 0.4), (0.45, 0.55), (0.45, 0.55))) is OUTSIDE
    # Block inside the sphere on the +x side: inside.
    assert o.classify(((0.52, 0.6), (0.48, 0.52), (0.48, 0.52))) is INSIDE


def test_hemisphere_negative_x():
    o = obj(Shape.SURFACE_HEMISPHERE_NX)
    assert o.classify(((0.6, 0.8), (0.45, 0.55), (0.45, 0.55))) is OUTSIDE


# ----------------------------------------------------------------------
# Cylinder classification
# ----------------------------------------------------------------------
def test_cylinder_z_cases():
    o = obj(Shape.SOLID_CYLINDER_Z)
    # Far in xy: outside regardless of z.
    assert o.classify(((0.9, 1.0), (0.9, 1.0), (0.4, 0.6))) is OUTSIDE
    # Near axis, within slab: inside.
    assert o.classify(((0.45, 0.55), (0.45, 0.55), (0.45, 0.55))) is INSIDE
    # Near axis but crossing the z cap: surface.
    assert o.classify(((0.45, 0.55), (0.45, 0.55), (0.6, 0.8))) is SURFACE


def test_cylinder_axes_differ():
    ox = obj(Shape.SOLID_CYLINDER_X)
    oz = obj(Shape.SOLID_CYLINDER_Z)
    block = ((0.45, 0.55), (0.45, 0.55), (0.1, 0.25))  # below the z-slab
    assert oz.classify(block) is OUTSIDE
    assert ox.classify(block) is not INSIDE  # outside the yz-ellipse


# ----------------------------------------------------------------------
# Movement & growth
# ----------------------------------------------------------------------
def test_advance_moves_center():
    o = obj(Shape.SURFACE_SPHEROID, move=(0.01, -0.02, 0.0))
    o.advance(5)
    assert o.center[0] == pytest.approx(0.55)
    assert o.center[1] == pytest.approx(0.40)


def test_advance_grows_size():
    o = obj(Shape.SURFACE_SPHEROID, grow=(0.01, 0.0, 0.0))
    o.advance(3)
    assert o.size[0] == pytest.approx(0.23)


def test_bounce_reflects_at_domain_edge():
    o = obj(
        Shape.SURFACE_SPHEROID,
        center=(0.85, 0.5, 0.5),
        size=(0.1, 0.1, 0.1),
        move=(0.1, 0.0, 0.0),
        bounce=True,
    )
    o.advance(1)  # 0.95 + 0.1 extent > 1 -> reflect
    assert o.move[0] == -0.1
    o.advance(1)
    assert o.center[0] == pytest.approx(0.85)


def test_no_bounce_object_leaves_domain():
    o = obj(
        Shape.SURFACE_SPHEROID,
        center=(0.9, 0.5, 0.5),
        move=(0.1, 0.0, 0.0),
        bounce=False,
    )
    o.advance(3)
    assert o.center[0] == pytest.approx(1.2)


def test_sphere_helper():
    spec = sphere(center=(0.1, 0.2, 0.3), radius=0.05, solid=True)
    assert spec.shape is Shape.SOLID_SPHEROID
    assert spec.size == (0.05, 0.05, 0.05)


# ----------------------------------------------------------------------
# Property: classification consistency
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(
    cx=st.floats(min_value=0.1, max_value=0.9),
    cy=st.floats(min_value=0.1, max_value=0.9),
    cz=st.floats(min_value=0.1, max_value=0.9),
    r=st.floats(min_value=0.05, max_value=0.4),
    x0=st.floats(min_value=0.0, max_value=0.9),
    w=st.floats(min_value=0.01, max_value=0.3),
)
def test_property_spheroid_classification_consistent(cx, cy, cz, r, x0, w):
    """The block's corner/center point membership agrees with the
    classification: INSIDE blocks have all probe points inside, OUTSIDE
    blocks have none."""
    o = MovingObject(sphere(center=(cx, cy, cz), radius=r))
    bounds = ((x0, x0 + w), (0.4, 0.5), (0.4, 0.5))
    cls = o.classify(bounds)

    def inside(p):
        return sum(((p[a] - o.center[a]) / o.size[a]) ** 2
                   for a in range(3)) < 1.0

    corners = [
        (x, y, z)
        for x in bounds[0]
        for y in bounds[1]
        for z in bounds[2]
    ]
    center = tuple((lo + hi) / 2 for lo, hi in bounds)
    probes = corners + [center]
    inside_count = sum(inside(p) for p in probes)
    if cls is INSIDE:
        assert inside_count == len(probes)
    elif cls is OUTSIDE:
        assert inside_count == 0

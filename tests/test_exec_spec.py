"""RunSpec: serialization, fingerprinting, default resolution, shim."""

import dataclasses
import json

import pytest

from repro import (
    AmrConfig,
    MachineSpec,
    RunSpec,
    laptop,
    marenostrum4,
    run_simulation,
    sphere,
)
from repro.core import DEFAULT_HYBRID_RPN, resolve_ranks_per_node


def small_config(**overrides):
    kwargs = dict(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25,
                        move=(0.05, 0.0, 0.0)),),
    )
    kwargs.update(overrides)
    return AmrConfig(**kwargs)


def base_spec(**overrides):
    kwargs = dict(
        config=small_config(),
        machine="laptop",
        variant="tampi_dataflow",
        num_nodes=1,
        ranks_per_node=2,
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
def test_to_from_dict_round_trip():
    spec = base_spec()
    assert RunSpec.from_dict(spec.to_dict()) == spec


def test_json_round_trip_through_text():
    spec = base_spec(cost_overrides={"noise_amplitude": 0.0},
                     stage_barrier=True, delayed_checksum=False)
    blob = json.dumps(spec.to_dict())
    assert RunSpec.from_dict(json.loads(blob)) == spec


def test_explicit_machine_spec_round_trips():
    spec = base_spec(machine=laptop())
    again = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert isinstance(again.machine, MachineSpec)
    assert again == spec


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_is_deterministic():
    assert base_spec().fingerprint() == base_spec().fingerprint()


def test_fingerprint_survives_serialization():
    spec = base_spec()
    again = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again.fingerprint() == spec.fingerprint()


def test_fingerprint_equal_for_preset_name_and_expanded_spec():
    assert (
        base_spec(machine="laptop").fingerprint()
        == base_spec(machine=laptop()).fingerprint()
    )


def test_fingerprint_equal_for_implicit_and_explicit_default_rpn():
    implicit = base_spec(ranks_per_node=None)
    explicit = base_spec(ranks_per_node=DEFAULT_HYBRID_RPN)
    assert implicit.fingerprint() == explicit.fingerprint()


@pytest.mark.parametrize(
    "change",
    [
        {"variant": "fork_join"},
        {"num_nodes": 2},
        {"ranks_per_node": 4},
        {"scheduler": "fifo"},
        {"scheduler": "fuzz", "sched_seed": 3},
        {"check_access": True},
        {"delayed_checksum": False},
        {"stage_barrier": True},
        {"cost_overrides": {"noise_amplitude": 0.0}},
        {"trace": True},
        {"machine": "marenostrum4"},
    ],
)
def test_fingerprint_sensitive_to_every_field(change):
    assert (
        dataclasses.replace(base_spec(), **change).fingerprint()
        != base_spec().fingerprint()
    )


def test_fingerprint_sensitive_to_config_changes():
    changed = base_spec(config=small_config(num_tsteps=2))
    assert changed.fingerprint() != base_spec().fingerprint()


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_unknown_scheduler_rejected_with_clear_error():
    with pytest.raises(ValueError, match="unknown scheduler 'wfq'"):
        base_spec(scheduler="wfq")


def test_scheduler_error_names_the_valid_choices():
    from repro.tasking.runtime import SCHEDULERS

    with pytest.raises(ValueError) as exc:
        base_spec(scheduler="nope")
    for name in SCHEDULERS:
        assert name in str(exc.value)


def test_negative_sched_seed_rejected():
    with pytest.raises(ValueError, match="sched_seed"):
        base_spec(sched_seed=-1)


def test_sched_seed_and_check_access_round_trip():
    spec = base_spec(scheduler="fuzz", sched_seed=11, check_access=True)
    again = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec
    assert again.sched_seed == 11 and again.check_access is True


def test_cost_overrides_fold_into_resolved_machine():
    """Overrides applied by hand must hit the same cache entry."""
    via_override = base_spec(cost_overrides={"noise_amplitude": 0.0})
    hand_built = laptop()
    hand_built = MachineSpec(
        node=hand_built.node,
        network=hand_built.network,
        cost=hand_built.cost.with_overrides(noise_amplitude=0.0),
        name=hand_built.name,
    )
    assert (
        via_override.fingerprint()
        == base_spec(machine=hand_built).fingerprint()
    )


# ----------------------------------------------------------------------
# Resolution (single source of truth for defaults)
# ----------------------------------------------------------------------
def test_default_rpn_mpi_only_fills_the_node():
    spec = RunSpec(
        config=small_config(npx=48, init_x=1, init_y=1, init_z=1),
        machine="marenostrum4", variant="mpi_only",
    )
    assert spec.resolve().ranks_per_node == 48


def test_default_rpn_hybrids_use_paper_value():
    for variant in ("fork_join", "tampi_dataflow"):
        assert resolve_ranks_per_node(variant, marenostrum4()) == 4


def test_resolve_is_idempotent():
    resolved = base_spec(ranks_per_node=None).resolve()
    assert resolved.resolve() == resolved
    assert isinstance(resolved.machine, MachineSpec)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_rejects_unknown_variant():
    with pytest.raises(ValueError, match="variant"):
        base_spec(variant="nope")


def test_rejects_unknown_cost_override():
    with pytest.raises(ValueError, match="cost_overrides"):
        base_spec(cost_overrides={"not_a_field": 1.0})


def test_rejects_unknown_preset():
    with pytest.raises(KeyError, match="preset"):
        base_spec(machine="cray").machine_spec()


# ----------------------------------------------------------------------
# Back-compat shim (deprecated; removed next release)
# ----------------------------------------------------------------------
def test_legacy_call_form_warns_and_matches_spec_form():
    with pytest.warns(DeprecationWarning, match="pass a single RunSpec"):
        legacy = run_simulation(
            small_config(), laptop(), variant="tampi_dataflow",
            num_nodes=1, ranks_per_node=2,
        )
    via_spec = run_simulation(base_spec())
    assert legacy == via_spec


def test_spec_form_does_not_warn():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        run_simulation(base_spec())


def test_legacy_form_requires_machine_spec():
    with pytest.raises(TypeError, match="machine spec"):
        run_simulation(small_config())


def test_spec_form_rejects_extra_arguments():
    with pytest.raises(TypeError, match="no further arguments"):
        run_simulation(base_spec(), laptop())

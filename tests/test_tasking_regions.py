"""Unit and property tests for region handles and the segment index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasking.regions import Region, RegionSpace


# ----------------------------------------------------------------------
# Region
# ----------------------------------------------------------------------
def test_region_rejects_empty_range():
    with pytest.raises(ValueError):
        Region("buf", 5, 5)


def test_region_rejects_negative_start():
    with pytest.raises(ValueError):
        Region("buf", -1, 5)


def test_region_overlap_same_base():
    a = Region("buf", 0, 10)
    b = Region("buf", 5, 15)
    c = Region("buf", 10, 20)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)  # half-open ranges touch but do not overlap


def test_region_no_overlap_across_bases():
    a = Region("buf-x", 0, 10)
    b = Region("buf-y", 0, 10)
    assert not a.overlaps(b)


def test_region_is_hashable_value_object():
    assert Region("b", 0, 4) == Region("b", 0, 4)
    assert hash(Region("b", 0, 4)) == hash(Region("b", 0, 4))
    assert Region("b", 0, 4) != Region("b", 0, 5)


# ----------------------------------------------------------------------
# RegionSpace
# ----------------------------------------------------------------------
def test_first_access_creates_one_segment():
    space = RegionSpace()
    states = space.segments_for(0, 100, dict)
    assert len(states) == 1
    assert len(space) == 1


def test_identical_access_reuses_state():
    space = RegionSpace()
    first = space.segments_for(0, 100, dict)
    second = space.segments_for(0, 100, dict)
    assert first[0] is second[0]
    assert len(space) == 1


def test_contained_access_splits_segment():
    space = RegionSpace()
    whole = space.segments_for(0, 100, dict)[0]
    whole["writer"] = "t0"
    inner = space.segments_for(25, 75, dict)
    assert len(inner) == 1
    assert len(space) == 3  # [0,25) [25,75) [75,100)
    # The fragment inherits a *copy* of the history: same content, but a
    # later mutation of one fragment must not pollute its siblings.
    assert inner[0] == whole and inner[0] is not whole
    inner[0]["writer"] = "t1"
    assert whole["writer"] == "t0"


def test_disjoint_accesses_have_distinct_states():
    space = RegionSpace()
    a = space.segments_for(0, 10, dict)[0]
    b = space.segments_for(10, 20, dict)[0]
    assert a is not b


def test_overlapping_access_collects_all_states():
    space = RegionSpace()
    a = space.segments_for(0, 10, dict)[0]
    b = space.segments_for(10, 20, dict)[0]
    both = space.segments_for(5, 15, dict)
    assert a in both and b in both


def test_access_spanning_gap_creates_filler():
    space = RegionSpace()
    space.segments_for(0, 10, dict)
    space.segments_for(20, 30, dict)
    states = space.segments_for(0, 30, dict)
    # [0,10) existing + [10,20) filler + [20,30) existing
    assert len(states) == 3
    assert len(space) == 3


def test_empty_range_rejected():
    space = RegionSpace()
    with pytest.raises(ValueError):
        space.segments_for(10, 10, dict)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=1, max_value=50),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_segments_cover_and_stay_disjoint(ranges):
    """After arbitrary accesses, segments are disjoint, sorted, and every
    queried range is exactly covered by the returned segment states."""
    space = RegionSpace()
    for start, length in ranges:
        states = space.segments_for(start, start + length, dict)
        assert len(states) >= 1
        # Segments of the space are disjoint and sorted.
        segs = space._segments
        for left, right in zip(segs, segs[1:]):
            assert left.stop <= right.start
        # The union of segments overlapping [start, start+length) covers it.
        covered = 0
        for seg in segs:
            lo = max(seg.start, start)
            hi = min(seg.stop, start + length)
            if hi > lo:
                covered += hi - lo
        assert covered == length


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=1, max_value=30),
        ),
        min_size=2,
        max_size=10,
    )
)
def test_property_overlapping_queries_share_state(ranges):
    """A query sees the history of earlier accesses iff they overlap it.

    Each access stamps a unique marker into every state it is handed;
    splits copy the history into both fragments, so a later overlapping
    query must find the marker, and a disjoint one must never (the
    shared-state design this replaced leaked markers across fragments
    after a split, serializing provably disjoint accesses)."""
    space = RegionSpace()
    seen = []  # ((start, stop), marker)
    for k, (start, length) in enumerate(ranges):
        rng = (start, start + length)
        states = space.segments_for(start, start + length, dict)
        markers = set()
        for s in states:
            markers |= set(s)
        for r_prev, m_prev in seen:
            overlap = rng[0] < r_prev[1] and r_prev[0] < rng[1]
            assert (m_prev in markers) == overlap, (
                f"{rng} vs {r_prev}: overlap={overlap}, "
                f"marker seen={m_prev in markers}"
            )
        for s in states:
            s[f"m{k}"] = True
        seen.append((rng, f"m{k}"))

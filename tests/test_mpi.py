"""Unit tests for the simulated MPI library."""

import numpy as np
import pytest

from repro.machine import NetworkSpec, NodeSpec, Machine
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    MAX,
    MIN,
    PROD,
    SUM,
    World,
    payload_nbytes,
)
from repro.simx import Environment


def make_world(num_nodes=1, ranks_per_node=2, cores_per_node=4):
    env = Environment()
    machine = Machine(
        node=NodeSpec(cores_per_node=cores_per_node, sockets_per_node=1),
        num_nodes=num_nodes,
        ranks_per_node=ranks_per_node,
    )
    world = World(env, machine, NetworkSpec())
    return env, world


# ----------------------------------------------------------------------
# Point-to-point
# ----------------------------------------------------------------------
def test_send_recv_payload():
    env, world = make_world()
    received = []

    def sender(comm):
        yield from comm.send(dest=1, tag=5, payload={"x": 1})

    def receiver(comm):
        req = yield from comm.recv(source=0, tag=5)
        received.append(req.data)

    env.process(sender(world.comm(0)))
    env.process(receiver(world.comm(1)))
    env.run()
    assert received == [{"x": 1}]


def test_isend_irecv_numpy_roundtrip():
    env, world = make_world()
    out = []

    def sender(comm):
        data = np.arange(100, dtype=np.float64)
        req = yield from comm.isend(dest=1, tag=3, payload=data)
        yield from comm.wait(req)

    def receiver(comm):
        req = yield from comm.irecv(source=0, tag=3)
        req = yield from comm.wait(req)
        out.append(req.data)

    env.process(sender(world.comm(0)))
    env.process(receiver(world.comm(1)))
    env.run()
    assert np.array_equal(out[0], np.arange(100, dtype=np.float64))


def test_recv_before_send_matches():
    env, world = make_world()
    order = []

    def receiver(comm):
        req = yield from comm.recv(source=0, tag=9)
        order.append(("recv-done", req.data))

    def sender(comm):
        yield comm.env.timeout(1.0)  # receiver posts first
        yield from comm.send(dest=1, tag=9, payload="late")

    env.process(receiver(world.comm(1)))
    env.process(sender(world.comm(0)))
    env.run()
    assert order == [("recv-done", "late")]


def test_unexpected_message_queued_until_recv():
    env, world = make_world()
    got = []

    def sender(comm):
        yield from comm.send(dest=1, tag=1, payload="early")

    def receiver(comm):
        yield comm.env.timeout(5.0)  # message arrives before post
        req = yield from comm.recv(source=0, tag=1)
        got.append(req.data)

    env.process(sender(world.comm(0)))
    env.process(receiver(world.comm(1)))
    env.run()
    assert got == ["early"]


def test_tag_matching_selects_correct_message():
    env, world = make_world()
    got = {}

    def sender(comm):
        yield from comm.send(dest=1, tag=10, payload="ten")
        yield from comm.send(dest=1, tag=20, payload="twenty")

    def receiver(comm):
        req20 = yield from comm.recv(source=0, tag=20)
        req10 = yield from comm.recv(source=0, tag=10)
        got[20] = req20.data
        got[10] = req10.data

    env.process(sender(world.comm(0)))
    env.process(receiver(world.comm(1)))
    env.run()
    assert got == {20: "twenty", 10: "ten"}


def test_any_source_any_tag_wildcards():
    env, world = make_world(ranks_per_node=3, cores_per_node=3)
    got = []

    def sender(comm, payload):
        yield from comm.send(dest=2, tag=7, payload=payload)

    def receiver(comm):
        for _ in range(2):
            req = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            got.append((req.status.source, req.data))

    env.process(sender(world.comm(0), "from0"))
    env.process(sender(world.comm(1), "from1"))
    env.process(receiver(world.comm(2)))
    env.run()
    assert sorted(got) == [(0, "from0"), (1, "from1")]


def test_non_overtaking_same_channel():
    """A big message sent first must match before a later small one."""
    env, world = make_world()
    got = []

    def sender(comm):
        big = np.zeros(1 << 20)
        req1 = yield from comm.isend(dest=1, tag=4, payload=big)
        req2 = yield from comm.isend(dest=1, tag=4, payload="small")
        yield from comm.waitall([req1, req2])

    def receiver(comm):
        r1 = yield from comm.recv(source=0, tag=4)
        r2 = yield from comm.recv(source=0, tag=4)
        got.append(isinstance(r1.data, np.ndarray))
        got.append(r2.data)

    env.process(sender(world.comm(0)))
    env.process(receiver(world.comm(1)))
    env.run()
    assert got == [True, "small"]


def test_send_to_self():
    env, world = make_world()
    got = []

    def proc(comm):
        sreq = yield from comm.isend(dest=0, tag=2, payload="me")
        rreq = yield from comm.recv(source=0, tag=2)
        yield from comm.wait(sreq)
        got.append(rreq.data)

    env.process(proc(world.comm(0)))
    env.run()
    assert got == ["me"]


def test_invalid_dest_rejected():
    env, world = make_world()

    def proc(comm):
        yield from comm.isend(dest=99, tag=0, payload=None)

    env.process(proc(world.comm(0)))
    with pytest.raises(ValueError):
        env.run()


def test_status_reports_envelope():
    env, world = make_world()
    statuses = []

    def sender(comm):
        yield from comm.send(dest=1, tag=42, nbytes=4096, payload=None)

    def receiver(comm):
        req = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
        statuses.append(req.status)

    env.process(sender(world.comm(0)))
    env.process(receiver(world.comm(1)))
    env.run()
    st = statuses[0]
    assert st.Get_source() == 0
    assert st.Get_tag() == 42
    assert st.Get_count() == 4096


# ----------------------------------------------------------------------
# Waitany / waitall / test
# ----------------------------------------------------------------------
def test_waitany_returns_first_completed():
    env, world = make_world(ranks_per_node=3, cores_per_node=3)
    indices = []

    def slow_sender(comm):
        yield comm.env.timeout(10.0)
        yield from comm.send(dest=2, tag=1, payload="slow")

    def fast_sender(comm):
        yield from comm.send(dest=2, tag=2, payload="fast")

    def receiver(comm):
        r_slow = yield from comm.irecv(source=0, tag=1)
        r_fast = yield from comm.irecv(source=1, tag=2)
        reqs = [r_slow, r_fast]
        for _ in range(2):
            idx, req = yield from comm.waitany(reqs)
            indices.append((idx, req.data))
            reqs[idx] = None

    env.process(slow_sender(world.comm(0)))
    env.process(fast_sender(world.comm(1)))
    env.process(receiver(world.comm(2)))
    env.run()
    assert indices == [(1, "fast"), (0, "slow")]


def test_waitany_on_all_none_raises():
    env, world = make_world()

    def proc(comm):
        yield from comm.waitany([None, None])

    env.process(proc(world.comm(0)))
    with pytest.raises(ValueError):
        env.run()


def test_test_is_nonblocking():
    env, world = make_world()
    flags = []

    def receiver(comm):
        req = yield from comm.irecv(source=0, tag=1)
        flags.append(comm.test(req))
        yield from comm.wait(req)
        flags.append(comm.test(req))

    def sender(comm):
        yield comm.env.timeout(1.0)
        yield from comm.send(dest=1, tag=1, payload="x")

    env.process(receiver(world.comm(1)))
    env.process(sender(world.comm(0)))
    env.run()
    assert flags == [False, True]


# ----------------------------------------------------------------------
# Timing model
# ----------------------------------------------------------------------
def test_intra_node_message_faster_than_inter_node():
    def elapsed(num_nodes, ranks_per_node, dest):
        env, world = make_world(
            num_nodes=num_nodes,
            ranks_per_node=ranks_per_node,
            cores_per_node=4,
        )
        done = []

        def sender(comm):
            yield from comm.send(dest=dest, tag=0, nbytes=1 << 20)

        def receiver(comm):
            yield from comm.recv(source=0, tag=0)
            done.append(comm.env.now)

        env.process(sender(world.comm(0)))
        env.process(receiver(world.comm(dest)))
        env.run()
        return done[0]

    intra = elapsed(num_nodes=1, ranks_per_node=2, dest=1)
    inter = elapsed(num_nodes=2, ranks_per_node=1, dest=1)
    assert intra < inter


def test_larger_message_takes_longer():
    def elapsed(nbytes):
        env, world = make_world()
        done = []

        def sender(comm):
            yield from comm.send(dest=1, tag=0, nbytes=nbytes)

        def receiver(comm):
            yield from comm.recv(source=0, tag=0)
            done.append(comm.env.now)

        env.process(sender(world.comm(0)))
        env.process(receiver(world.comm(1)))
        env.run()
        return done[0]

    assert elapsed(1 << 22) > elapsed(1 << 10)


def test_stats_count_messages_and_bytes():
    env, world = make_world(num_nodes=2, ranks_per_node=1, cores_per_node=4)

    def sender(comm):
        yield from comm.send(dest=1, tag=0, nbytes=1000)

    def receiver(comm):
        yield from comm.recv(source=0, tag=0)

    env.process(sender(world.comm(0)))
    env.process(receiver(world.comm(1)))
    env.run()
    assert world.stats.messages == 1
    assert world.stats.bytes_sent == 1000
    assert world.stats.inter_node_messages == 1
    assert world.stats.intra_node_messages == 0


# ----------------------------------------------------------------------
# Collectives
# ----------------------------------------------------------------------
def run_collective(nranks, body):
    env, world = make_world(ranks_per_node=nranks, cores_per_node=nranks)
    results = {}

    def proc(rank):
        comm = world.comm(rank)
        results[rank] = yield from body(comm, rank)

    for r in range(nranks):
        env.process(proc(r))
    env.run()
    return results, env


def test_allreduce_sum():
    results, _ = run_collective(
        4, lambda comm, rank: comm.allreduce(rank + 1, op=SUM)
    )
    assert all(v == 10 for v in results.values())


def test_allreduce_max_min_prod():
    results, _ = run_collective(
        3, lambda comm, rank: comm.allreduce(rank, op=MAX)
    )
    assert all(v == 2 for v in results.values())
    results, _ = run_collective(
        3, lambda comm, rank: comm.allreduce(rank, op=MIN)
    )
    assert all(v == 0 for v in results.values())
    results, _ = run_collective(
        3, lambda comm, rank: comm.allreduce(rank + 1, op=PROD)
    )
    assert all(v == 6 for v in results.values())


def test_allreduce_numpy_arrays():
    results, _ = run_collective(
        4,
        lambda comm, rank: comm.allreduce(
            np.full(5, float(rank)), op=SUM
        ),
    )
    assert np.array_equal(results[0], np.full(5, 6.0))


def test_allreduce_tuple_elementwise():
    results, _ = run_collective(
        2, lambda comm, rank: comm.allreduce((rank, 10 * rank), op=SUM)
    )
    assert results[0] == (1, 10)


def test_reduce_only_root_gets_result():
    results, _ = run_collective(
        4, lambda comm, rank: comm.reduce(rank + 1, op=SUM, root=2)
    )
    assert results[2] == 10
    assert results[0] is None and results[1] is None and results[3] is None


def test_bcast_distributes_root_value():
    def body(comm, rank):
        value = "secret" if rank == 1 else None
        return (yield from comm.bcast(value, root=1))

    results, _ = run_collective(4, body)
    assert all(v == "secret" for v in results.values())


def test_allgather_collects_in_rank_order():
    results, _ = run_collective(
        4, lambda comm, rank: comm.allgather(rank * rank)
    )
    assert results[3] == [0, 1, 4, 9]


def test_alltoall_personalized_exchange():
    def body(comm, rank):
        values = [f"{rank}->{d}" for d in range(comm.Get_size())]
        return (yield from comm.alltoall(values))

    results, _ = run_collective(3, body)
    assert results[1] == ["0->1", "1->1", "2->1"]


def test_alltoall_wrong_length_rejected():
    env, world = make_world()

    def proc(comm):
        yield from comm.alltoall([1])  # size is 2

    env.process(proc(world.comm(0)))
    with pytest.raises(ValueError):
        env.run()


def test_barrier_synchronizes_ranks():
    env, world = make_world(ranks_per_node=3, cores_per_node=3)
    exit_times = {}

    def proc(rank, delay):
        comm = world.comm(rank)
        yield env.timeout(delay)
        yield from comm.barrier()
        exit_times[rank] = env.now

    env.process(proc(0, 1.0))
    env.process(proc(1, 5.0))
    env.process(proc(2, 3.0))
    env.run()
    assert len(set(exit_times.values())) == 1
    assert exit_times[0] > 5.0  # nobody leaves before the last enters


def test_collective_kind_mismatch_detected():
    env, world = make_world()

    def good(comm):
        yield from comm.barrier()

    def bad(comm):
        yield from comm.allreduce(1)

    env.process(good(world.comm(0)))
    env.process(bad(world.comm(1)))
    with pytest.raises(RuntimeError, match="collective mismatch"):
        env.run()


def test_successive_collectives_keep_order():
    results, _ = run_collective(
        2,
        lambda comm, rank: _two_collectives(comm, rank),
    )
    assert results[0] == (1, 2)
    assert results[1] == (1, 2)


def _two_collectives(comm, rank):
    first = yield from comm.allreduce(rank, op=SUM)
    second = yield from comm.allreduce(rank + 1, op=PROD)
    return (first, second)


def test_collectives_counted_in_stats():
    _, env_world = run_collective(2, lambda comm, rank: comm.barrier())


def test_payload_nbytes_estimates():
    assert payload_nbytes(None) == 0
    assert payload_nbytes(np.zeros(10)) == 80
    assert payload_nbytes(b"abcd") == 4
    assert payload_nbytes([1, 2, 3]) == 24
    assert payload_nbytes(3.14) == 8

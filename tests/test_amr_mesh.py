"""Tests for the mesh structure, refinement planning, and 2:1 balance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr import (
    AmrConfig,
    BlockId,
    MeshStructure,
    MovingObject,
    PlanBoard,
    apply_plan,
    plan_refinement,
    sphere,
)


def config(**kw):
    defaults = dict(
        npx=2, npy=2, npz=2, init_x=1, init_y=1, init_z=1,
        nx=4, ny=4, nz=4, num_vars=2, max_refine_level=3,
    )
    defaults.update(kw)
    return AmrConfig(**defaults)


def corner_sphere(radius=0.3):
    return [MovingObject(sphere(center=(0.2, 0.2, 0.2), radius=radius))]


# ----------------------------------------------------------------------
# Structure basics
# ----------------------------------------------------------------------
def test_initial_mesh_one_block_per_rank():
    s = MeshStructure(config())
    assert s.num_blocks() == 8
    assert s.rank_block_counts() == {r: 1 for r in range(8)}


def test_initial_owner_layout_is_cartesian():
    cfg = config(npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2)
    s = MeshStructure(cfg)
    assert s.num_blocks() == 8
    # Blocks with i=0 belong to rank 0, i=1 to rank 1.
    for bid in s.active:
        assert s.owner[bid] == (0 if bid.i == 0 else 1)


def test_set_owner_moves_block():
    s = MeshStructure(config())
    bid = next(iter(s.active))
    old = s.owner[bid]
    new = (old + 1) % 8
    s.set_owner(bid, new)
    assert s.owner[bid] == new
    assert bid in set(s.blocks_of_rank(new))
    assert bid not in set(s.blocks_of_rank(old))


def test_set_owner_inactive_rejected():
    s = MeshStructure(config())
    with pytest.raises(KeyError):
        s.set_owner(BlockId(3, 0, 0, 0), 0)


def test_face_neighbors_same_level():
    s = MeshStructure(config())
    nbrs = s.face_neighbors(BlockId(0, 0, 0, 0), 0, 1)
    assert nbrs == [(BlockId(0, 1, 0, 0), "same")]


def test_face_neighbors_domain_boundary():
    s = MeshStructure(config())
    assert s.face_neighbors(BlockId(0, 0, 0, 0), 0, 0) == []


def test_open_faces_at_corner():
    s = MeshStructure(config())
    open_faces = s.open_faces(BlockId(0, 0, 0, 0))
    assert (0, 0) in open_faces and (1, 0) in open_faces and (2, 0) in open_faces
    assert len(open_faces) == 3


def test_invariants_on_initial_mesh():
    s = MeshStructure(config())
    assert s.check_cover()
    assert s.check_two_to_one()


# ----------------------------------------------------------------------
# Refinement planning
# ----------------------------------------------------------------------
def test_plan_refines_blocks_touching_surface():
    s = MeshStructure(config())
    plan = plan_refinement(s, corner_sphere())
    assert BlockId(0, 0, 0, 0) in plan.refine
    assert not plan.coarsen_parents


def test_plan_empty_with_no_objects():
    s = MeshStructure(config())
    plan = plan_refinement(s, [])
    assert plan.is_empty


def test_max_level_caps_refinement():
    cfg = config(max_refine_level=0)
    s = MeshStructure(cfg)
    plan = plan_refinement(s, corner_sphere())
    assert plan.is_empty


def test_apply_plan_replaces_block_with_children():
    s = MeshStructure(config())
    plan = plan_refinement(s, corner_sphere())
    n_before = s.num_blocks()
    split_owner, coarsen_owner = apply_plan(s, plan)
    assert s.num_blocks() == n_before + 7 * len(plan.refine)
    for bid, rank in split_owner.items():
        assert bid not in s.active
        for child in bid.children():
            assert child in s.active
            assert s.owner[child] == rank
    assert s.check_cover()
    assert s.check_two_to_one()


def test_refine_then_coarsen_when_object_leaves():
    cfg = config(max_refine_level=1)
    s = MeshStructure(cfg)
    obj = corner_sphere()
    plan = plan_refinement(s, obj)
    apply_plan(s, plan)
    refined_count = s.num_blocks()
    assert refined_count > 8
    # Object disappears -> children coarsen back to roots.
    plan2 = plan_refinement(s, [])
    assert plan2.coarsen_parents
    apply_plan(s, plan2)
    assert s.num_blocks() == 8
    assert s.check_cover() and s.check_two_to_one()


def test_block_delta_accounting():
    s = MeshStructure(config())
    plan = plan_refinement(s, corner_sphere())
    n_before = s.num_blocks()
    apply_plan(s, plan)
    assert s.num_blocks() - n_before == plan.block_delta()


def test_two_to_one_enforced_across_levels():
    """Refining twice in a corner forces neighbors to refine too."""
    cfg = config(max_refine_level=2)
    s = MeshStructure(cfg)
    objects = [MovingObject(sphere(center=(0.05, 0.05, 0.05), radius=0.08))]
    for _ in range(2):
        plan = plan_refinement(s, objects)
        if plan.is_empty:
            break
        apply_plan(s, plan)
        assert s.check_two_to_one()
        assert s.check_cover()
    levels = {b.level for b in s.active}
    assert 2 in levels  # the corner reached level 2
    assert s.check_two_to_one()


def test_coarsen_requires_all_siblings():
    """A sibling group with one member still triggered must not coarsen."""
    cfg = config(max_refine_level=1)
    s = MeshStructure(cfg)
    apply_plan(s, plan_refinement(s, corner_sphere()))
    # Shrink the sphere so that only part of the previously refined
    # region is still triggered: either whole groups stay or whole
    # groups coarsen, never partial ones.
    objects = [MovingObject(sphere(center=(0.2, 0.2, 0.2), radius=0.1))]
    plan = plan_refinement(s, objects)
    apply_plan(s, plan)
    assert s.check_cover() and s.check_two_to_one()
    # Every remaining refined block has its full sibling group active.
    for bid in [b for b in s.active if b.level == 1]:
        assert all(sib in s.active for sib in bid.sibling_group())


@settings(max_examples=20, deadline=None)
@given(
    cx=st.floats(min_value=0.05, max_value=0.95),
    cy=st.floats(min_value=0.05, max_value=0.95),
    cz=st.floats(min_value=0.05, max_value=0.95),
    r=st.floats(min_value=0.05, max_value=0.3),
    steps=st.integers(min_value=1, max_value=3),
)
def test_property_refinement_preserves_invariants(cx, cy, cz, r, steps):
    """Any sequence of refinements keeps cover + 2:1 + ownership sanity."""
    cfg = config(max_refine_level=2)
    s = MeshStructure(cfg)
    objects = [MovingObject(sphere(center=(cx, cy, cz), radius=r,
                                   move=(0.07, 0.0, 0.0)))]
    for _ in range(steps):
        plan = plan_refinement(s, objects)
        apply_plan(s, plan)
        assert s.check_cover()
        assert s.check_two_to_one()
        total = sum(len(s.blocks_of_rank(rk)) for rk in range(8))
        assert total == s.num_blocks()
        objects[0].advance(1)


# ----------------------------------------------------------------------
# PlanBoard
# ----------------------------------------------------------------------
def test_planboard_computes_once():
    board = PlanBoard(num_ranks=3)
    calls = []

    def compute():
        calls.append(1)
        return "plan"

    for _ in range(3):
        assert board.get("k", compute) == "plan"
    assert len(calls) == 1
    # Entry dropped after all ranks consumed: next epoch recomputes.
    assert board.get("k", compute) == "plan"
    assert len(calls) == 2


def test_planboard_distinct_keys():
    board = PlanBoard(num_ranks=1)
    assert board.get(("a", 1), lambda: 1) == 1
    assert board.get(("a", 2), lambda: 2) == 2

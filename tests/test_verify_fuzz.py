"""Schedule-perturbation fuzzer: legality, determinism, invariance."""

import pytest

from repro import run_simulation
from repro.machine import CostSpec
from repro.simx import Environment
from repro.tasking import RankRuntime
from repro.verify import (
    ScheduleVarianceError,
    default_golden_specs,
    fuzz_specs,
    fuzz_sweep,
    invariants,
)

FREE = CostSpec(
    task_spawn_overhead=0.0,
    task_dispatch_overhead=0.0,
    noise_amplitude=0.0,
    noise_spike_rate=0.0,
)


# ----------------------------------------------------------------------
# The fuzz scheduler only explores *legal* schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 7, 42])
def test_fuzz_scheduler_respects_dependencies(seed):
    """A write-chain must execute in order under every fuzz seed."""
    env = Environment()
    rt = RankRuntime(
        env, num_cores=4, cost_spec=FREE, scheduler="fuzz", sched_seed=seed
    )
    order = []

    def main():
        for i in range(12):
            # Even tasks form an inout chain on "h"; odd tasks are free.
            handles = {"inouts": ["h"]} if i % 2 == 0 else {}
            yield from rt.spawn(
                f"t{i}", cost=1e-6,
                body=lambda i=i: order.append(i), **handles,
            )
        yield from rt.taskwait()

    proc = env.process(main())
    env.run(until=proc)
    assert sorted(order) == list(range(12))
    chain = [i for i in order if i % 2 == 0]
    assert chain == sorted(chain), f"dependency chain reordered: {order}"


def test_fuzz_seed_is_reproducible_and_seeds_differ():
    spec = default_golden_specs(quick=True)["tampi_dataflow_small"]
    seeds = fuzz_specs(spec, [3, 3, 4])
    a, b, c = (run_simulation(s) for s in seeds)
    assert a.total_time == b.total_time  # same seed, same schedule
    # Different seeds should (for this workload) pick different schedules;
    # the physics must agree regardless.
    assert invariants(a) == invariants(c)


# ----------------------------------------------------------------------
# fuzz_sweep driver
# ----------------------------------------------------------------------
def test_fuzz_sweep_ten_seeds_identical_with_mpi_reference():
    specs = default_golden_specs(quick=True)
    reference = run_simulation(specs["mpi_only_small"])
    report = fuzz_sweep(
        specs["tampi_dataflow_small"], seeds=10, reference=reference
    )
    assert report.ok, report.summary()
    assert len(report.results) == 10
    assert "10 seeds" in report.summary()
    report.raise_failures()  # no-op when ok


def test_fuzz_sweep_rejects_fuzz_baseline():
    spec = default_golden_specs(quick=True)["tampi_dataflow_small"]
    bad = fuzz_specs(spec, [0])[0]
    with pytest.raises(ValueError, match="deterministic baseline"):
        fuzz_sweep(bad, seeds=2)


def test_fuzz_sweep_detects_divergence():
    """A doctored result must be reported, not silently averaged away."""
    spec = default_golden_specs(quick=True)["fork_join_small"]
    report = fuzz_sweep(spec, seeds=2)
    assert report.ok
    # Corrupt one seed's invariants and re-diff through the report path.
    from repro.verify.fuzz import _diff_invariants

    base = invariants(report.baseline)
    doctored = invariants(report.results[0])
    doctored["flops"] += 1.0
    problems = _diff_invariants("seed0", base, doctored)
    assert problems and "flops" in problems[0]
    report.mismatches += problems
    with pytest.raises(ScheduleVarianceError, match="flops"):
        report.raise_failures()

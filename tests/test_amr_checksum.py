"""Tests for checksum computation and validation."""

import numpy as np
import pytest

from repro.amr import AmrConfig, BlockId, ChecksumError, local_checksum, validate
from repro.amr.block import Block


def blocks(payload="real", n=3):
    cfg = AmrConfig(
        npx=1, npy=1, npz=1, init_x=2, init_y=2, init_z=1,
        nx=4, ny=4, nz=4, num_vars=2, payload=payload,
    )
    return [
        Block.initial(BlockId(0, i, 0, 0), cfg) for i in range(min(n, 2))
    ] + [Block.initial(BlockId(0, i, 1, 0), cfg) for i in range(max(n - 2, 0))]


def test_local_checksum_sums_blocks():
    bs = blocks(n=3)
    vs = slice(0, 2)
    total = local_checksum(bs, vs)
    expected = sum(b.checksum(vs) for b in bs)
    assert np.allclose(total, expected)


def test_local_checksum_empty_blocks():
    total = local_checksum([], slice(0, 3))
    assert total.shape == (3,)
    assert np.all(total == 0)


def test_local_checksum_synthetic():
    bs = blocks(payload="synthetic", n=2)
    total = local_checksum(bs, slice(0, 2))
    assert total.shape == (2,)
    assert np.all(total > 0)


def test_validate_first_checksum_accepts_anything_finite():
    assert validate(None, np.array([1.0, 2.0]), tolerance=0.01) == 0.0


def test_validate_small_drift_ok():
    prev = np.array([100.0, 200.0])
    cur = np.array([101.0, 199.0])
    drift = validate(prev, cur, tolerance=0.05)
    assert drift == pytest.approx(0.01)


def test_validate_large_drift_raises():
    prev = np.array([100.0])
    cur = np.array([200.0])
    with pytest.raises(ChecksumError, match="drift"):
        validate(prev, cur, tolerance=0.5)


def test_validate_nan_raises():
    with pytest.raises(ChecksumError, match="finite"):
        validate(np.array([1.0]), np.array([np.nan]), tolerance=1.0)


def test_validate_inf_raises():
    with pytest.raises(ChecksumError, match="finite"):
        validate(None, np.array([np.inf]), tolerance=1.0)


def test_validate_reports_worst_variable():
    prev = np.array([100.0, 100.0, 100.0])
    cur = np.array([100.0, 100.0, 300.0])
    with pytest.raises(ChecksumError, match="variable 2"):
        validate(prev, cur, tolerance=0.5)

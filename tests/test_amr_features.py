"""Tests for the extended miniAMR features: RCB balancing, the 27-point
stencil, uniform refinement, comm-variable groups, and mesh metrics."""

import numpy as np
import pytest

from repro import AmrConfig, RunSpec, laptop, run_simulation, sphere
from repro.amr import (
    BlockId,
    MeshStructure,
    MovingObject,
    amr_savings,
    apply_plan,
    cross_level_face_fraction,
    level_histogram,
    mesh_report,
    plan_partition,
    plan_partition_rcb,
    plan_refinement,
    uniform_equivalent_blocks,
)
from repro.amr.block import Block

BASE = dict(
    nx=4, ny=4, nz=4, num_vars=4,
    num_tsteps=2, stages_per_ts=4, refine_freq=1, checksum_freq=4,
    max_refine_level=1,
    objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
)


def hybrid_cfg(**kw):
    d = dict(BASE, npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2)
    d.update(kw)
    return AmrConfig(**d)


def run(cfg, variant="tampi_dataflow"):
    return run_simulation(RunSpec(
        config=cfg, machine=laptop(), variant=variant, num_nodes=1,
        ranks_per_node=2,
    ))


# ----------------------------------------------------------------------
# RCB load balancing
# ----------------------------------------------------------------------
def refined_structure():
    cfg = hybrid_cfg(max_refine_level=2)
    s = MeshStructure(cfg)
    obj = [MovingObject(sphere(center=(0.25, 0.25, 0.25), radius=0.3))]
    apply_plan(s, plan_refinement(s, obj))
    return s


def test_rcb_partition_counts_within_one():
    s = refined_structure()
    target = plan_partition_rcb(s, 8)
    counts = {}
    for rank in target.values():
        counts[rank] = counts.get(rank, 0) + 1
    assert sum(counts.values()) == s.num_blocks()
    assert max(counts.values()) - min(counts.values()) <= 1


def test_rcb_covers_every_block():
    s = refined_structure()
    target = plan_partition_rcb(s, 4)
    assert set(target) == s.active
    assert set(target.values()) == {0, 1, 2, 3}


def test_rcb_is_deterministic():
    s = refined_structure()
    assert plan_partition_rcb(s, 8) == plan_partition_rcb(s, 8)


def test_rcb_is_spatially_coherent():
    """RCB assigns geometrically close blocks to the same rank: with two
    ranks the cut is a plane, so each rank's centers separate cleanly."""
    s = refined_structure()
    target = plan_partition_rcb(s, 2)
    grid = s.grid
    for axis in range(3):
        lo = [grid.bounds(b)[axis][0] for b, r in target.items() if r == 0]
        hi = [grid.bounds(b)[axis][0] for b, r in target.items() if r == 1]
        if max(lo) <= min(hi):
            return  # found the cut axis
    pytest.fail("no clean bisection plane found")


def test_rcb_variant_run_matches_sfc_checksums():
    sfc = run(hybrid_cfg(lb_method="sfc"))
    rcb = run(hybrid_cfg(lb_method="rcb"))
    assert sfc.num_blocks == rcb.num_blocks
    for (_, a, _), (_, b, _) in zip(sfc.checksums, rcb.checksums):
        assert np.max(np.abs(a - b) / np.abs(a)) < 1e-12


# ----------------------------------------------------------------------
# 27-point stencil
# ----------------------------------------------------------------------
def test_stencil27_uniform_fixed_point():
    cfg = AmrConfig(
        npx=1, npy=1, npz=1, init_x=2, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=1, stencil=27,
    )
    b = Block.initial(BlockId(0, 0, 0, 0), cfg)
    vs = slice(0, 1)
    b.data[...] = 3.0
    b.stencil27(vs)
    assert np.allclose(b.data[0, 1:-1, 1:-1, 1:-1], 3.0)


def test_stencil27_spreads_wider_than_7():
    cfg = AmrConfig(
        npx=1, npy=1, npz=1, init_x=2, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=1,
    )
    b7 = Block.initial(BlockId(0, 0, 0, 0), cfg)
    b27 = Block.initial(BlockId(0, 0, 0, 0), cfg)
    vs = slice(0, 1)
    for b in (b7, b27):
        b.data[...] = 0.0
        b.data[0, 3, 3, 3] = 1.0
    b7.stencil7(vs)
    b27.stencil27(vs)
    # The diagonal neighbor is reached only by the 27-point stencil.
    assert b7.data[0, 2, 2, 2] == 0.0
    assert b27.data[0, 2, 2, 2] > 0.0


def test_stencil_27_run_counts_more_flops():
    seven = run(hybrid_cfg())
    twenty7 = run(hybrid_cfg(stencil=27))
    assert twenty7.flops == pytest.approx(seven.flops * 27 / 7)
    assert twenty7.total_time > seven.total_time


def test_invalid_stencil_rejected():
    with pytest.raises(ValueError, match="stencil"):
        hybrid_cfg(stencil=9)


# ----------------------------------------------------------------------
# Uniform refinement
# ----------------------------------------------------------------------
def test_uniform_refine_refines_everything():
    cfg = hybrid_cfg(uniform_refine=True, objects=())
    s = MeshStructure(cfg)
    plan = plan_refinement(s, [], uniform=True)
    assert len(plan.refine) == s.num_blocks()


def test_uniform_refine_run_grows_mesh():
    res = run(hybrid_cfg(uniform_refine=True, objects=()))
    assert res.num_blocks == 8 * 8  # every root block refined once


def test_invalid_lb_method_rejected():
    with pytest.raises(ValueError, match="lb_method"):
        hybrid_cfg(lb_method="magic")


# ----------------------------------------------------------------------
# Communication variable groups (--comm_vars)
# ----------------------------------------------------------------------
def test_multiple_groups_same_checksums():
    one = run(hybrid_cfg())
    grouped = run(hybrid_cfg(comm_vars=2))  # 4 vars -> 2 groups
    assert grouped.num_blocks == one.num_blocks
    for (_, a, _), (_, b, _) in zip(one.checksums, grouped.checksums):
        assert np.max(np.abs(a - b) / np.abs(a)) < 1e-12


def test_group_slices_partition_variables():
    cfg = hybrid_cfg(num_vars=4, comm_vars=3)
    assert cfg.num_groups == 2
    assert cfg.group_slice(0) == slice(0, 3)
    assert cfg.group_slice(1) == slice(3, 4)
    assert cfg.group_size(1) == 1
    with pytest.raises(ValueError):
        cfg.group_slice(2)


# ----------------------------------------------------------------------
# Mesh metrics
# ----------------------------------------------------------------------
def test_level_histogram_and_savings():
    s = refined_structure()
    hist = level_histogram(s)
    assert set(hist) == {0, 1}
    assert sum(hist.values()) == s.num_blocks()
    assert uniform_equivalent_blocks(s) == 8 * 8
    expected = 1.0 - s.num_blocks() / 64
    assert amr_savings(s) == pytest.approx(expected)
    assert amr_savings(s) > 0.0  # AMR actually saves something


def test_cross_level_face_fraction_bounds():
    s = refined_structure()
    frac = cross_level_face_fraction(s)
    assert 0.0 < frac < 1.0


def test_uniform_mesh_has_no_cross_level_faces():
    cfg = hybrid_cfg()
    s = MeshStructure(cfg)
    assert cross_level_face_fraction(s) == 0.0
    assert amr_savings(s) == 0.0


def test_mesh_report_renders():
    s = refined_structure()
    report = mesh_report(s)
    text = report.render()
    assert "blocks:" in text
    assert "savings vs uniform" in text
    assert f"{s.num_blocks()}" in text

"""Tests for the extensions beyond the paper: commutative ghost fills and
trace exports."""

import numpy as np
import pytest

from repro import AmrConfig, RunSpec, laptop, run_simulation, sphere
from repro.trace import Tracer


def cfg(**kw):
    d = dict(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=4,
        num_tsteps=3, stages_per_ts=4, refine_freq=2, checksum_freq=4,
        max_refine_level=2,
        objects=(
            sphere(center=(0.3, 0.3, 0.3), radius=0.25,
                   move=(0.05, 0.05, 0.0)),
        ),
    )
    d.update(kw)
    return AmrConfig(**d)


def run(c, **kw):
    return run_simulation(RunSpec(
        config=c, machine=laptop(), variant="tampi_dataflow", num_nodes=1,
        ranks_per_node=2, **kw,
    ))


# ----------------------------------------------------------------------
# Commutative ghost fills
# ----------------------------------------------------------------------
def test_commutative_ghosts_same_physics():
    """Ghost fills are plane-disjoint: any mutually-exclusive order gives
    the same checksums."""
    plain = run(cfg())
    commutative = run(cfg(commutative_ghosts=True))
    assert plain.num_blocks == commutative.num_blocks
    assert len(plain.checksums) == len(commutative.checksums)
    for (_, a, _), (_, b, _) in zip(plain.checksums, commutative.checksums):
        assert np.max(np.abs(a - b) / np.abs(a)) < 1e-12


def test_commutative_ghosts_run_completes_with_send_faces():
    res = run(cfg(commutative_ghosts=True, send_faces=True,
                  separate_buffers=True, max_comm_tasks=4))
    assert res.total_time > 0
    assert len(res.checksums) == 3


def test_commutative_ghosts_deterministic():
    a = run(cfg(commutative_ghosts=True))
    b = run(cfg(commutative_ghosts=True))
    assert a.total_time == b.total_time


# ----------------------------------------------------------------------
# Trace exports
# ----------------------------------------------------------------------
def test_to_records_roundtrip():
    t = Tracer()
    t.task_event(0, 1, "stencil b", "stencil", 0.5, 1.5)
    t.mpi_event(2, "Isend", 2.0, 2.1)
    records = t.to_records()
    assert len(records) == 2
    assert records[0]["phase"] == "stencil"
    assert records[0]["duration"] == pytest.approx(1.0)
    assert records[1]["rank"] == 2
    assert records[1]["kind"] == "mpi"


def test_summarize_empty():
    assert Tracer().summarize() == "empty trace"


def test_summarize_counts():
    t = Tracer()
    t.task_event(0, 0, "a", "stencil", 0.0, 1.0)
    t.task_event(1, 0, "b", "pack", 1.0, 2.0)
    t.mpi_event(0, "Wait", 0.0, 0.5)
    text = t.summarize()
    assert "2 task" in text
    assert "1 mpi" in text
    assert "2 ranks" in text


def test_run_trace_export():
    res = run(cfg(num_tsteps=1, refine_freq=0, max_refine_level=0,
                  objects=()), trace=True)
    records = res.tracer.to_records()
    assert records
    assert "events" in res.tracer.summarize()

"""Fault injection and observability under the partitioned kernel.

Fault determinism rests on keyed RNG streams — ``(seed, kind, rank)`` —
so a worker only ever draws from the streams of ranks it owns and the
draw sequence cannot depend on how ranks are partitioned.  These tests
pin that down end to end: an *active* FaultPlan (CPU noise, message
jitter, message loss — the last two perturbing cross-partition traffic)
must produce byte-identical results at every worker count, and the
per-partition window-stall accounting in the ProfileReport must be
internally consistent with measured wall clock.
"""

import json
import time
from dataclasses import replace

import pytest

from repro import AmrConfig, sphere
from repro.core import RunSpec
from repro.core.driver import run_simulation
from repro.faults import FaultPlan


def _spec(**overrides):
    cfg = AmrConfig(
        npx=2, npy=2, npz=1, init_x=1, init_y=1, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2,
        num_tsteps=2, stages_per_ts=3, refine_freq=1, checksum_freq=3,
        max_refine_level=1,
        objects=(sphere(center=(0.4, 0.45, 0.5), radius=0.2,
                        move=(0.05, 0.0, 0.0)),),
    )
    base = dict(config=cfg, machine="laptop", variant="mpi_only",
                num_nodes=1, ranks_per_node=4, scheduler="locality")
    base.update(overrides)
    return RunSpec(**base)


def _canon(result):
    return json.dumps(result.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# Active fault plans across worker counts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("plan", [
    # CPU noise + bursts: per-rank compute stretch.
    FaultPlan(seed=11, cpu_noise_factor=0.05, cpu_burst_rate=200.0,
              cpu_burst_time=5e-6),
    # Network jitter + loss: perturbs (and drops) messages that cross
    # partition boundaries, forcing retransmissions.
    FaultPlan(seed=7, message_jitter=2e-6, message_loss_rate=0.05),
    # Everything at once, plus a straggler rank.
    FaultPlan(seed=3, cpu_noise_factor=0.02, message_jitter=1e-6,
              message_loss_rate=0.03, straggler_ranks=(1,),
              straggler_factor=1.5),
], ids=["cpu", "network", "combined"])
def test_fault_plan_identical_across_worker_counts(plan):
    assert plan.is_active()
    spec = _spec(faults=plan)
    serial = run_simulation(spec)
    baseline = _canon(serial)
    # The plan actually did something observable.
    fs = serial.fault_stats
    assert fs is not None
    assert (fs["injected_cpu_seconds"] > 0
            or fs["injected_network_seconds"] > 0
            or fs["messages_lost"] > 0)
    for workers in (2, 4):
        part = run_simulation(replace(spec, pdes_workers=workers))
        assert _canon(part) == baseline, (
            f"fault injection diverged at pdes_workers={workers}"
        )


def test_fault_stats_merge_is_exact():
    """Per-rank fsum accumulators make injected-seconds totals
    independent of which worker added which increments."""
    plan = FaultPlan(seed=5, cpu_noise_factor=0.1, message_jitter=3e-6)
    spec = _spec(faults=plan)
    a = run_simulation(spec).fault_stats
    b = run_simulation(replace(spec, pdes_workers=4)).fault_stats
    assert a == b
    # Bit-equality of the float totals, not approx.
    assert a["injected_cpu_seconds"] == b["injected_cpu_seconds"]
    assert a["injected_network_seconds"] == b["injected_network_seconds"]


# ----------------------------------------------------------------------
# ProfileReport window-stall attribution
# ----------------------------------------------------------------------
def test_profile_pdes_stall_accounting():
    spec = _spec(profile=True, pdes_workers=2)
    t0 = time.perf_counter()
    result = run_simulation(spec)
    wall = time.perf_counter() - t0

    pdes = result.profile.pdes
    assert pdes["workers"] == 2
    assert pdes["windows"] >= 1
    assert pdes["lookahead"] > 0
    stall = pdes["stall_wall_seconds"]
    elapsed = pdes["elapsed_wall_seconds"]
    assert len(stall) == len(elapsed) == 2
    for s, e in zip(stall, elapsed):
        # Stall is measured around the two window barriers, so it is a
        # subset of the worker's total wall time, which in turn cannot
        # exceed the whole run's wall clock.
        assert 0.0 <= s <= e
        assert e <= wall
    # The serialized report round-trips the pdes block.
    from repro.obs import ProfileReport
    again = ProfileReport.from_dict(result.profile.to_dict())
    assert again.pdes == pdes


def test_profile_serial_has_no_pdes_block():
    result = run_simulation(_spec(profile=True))
    assert result.profile.pdes == {}
    assert "pdes" not in result.profile.to_dict()


def test_profile_fault_attribution_consistent_when_partitioned():
    """Fault-delay intervals survive the profiler merge: the partitioned
    profile attributes the same injected CPU seconds as the serial one."""
    plan = FaultPlan(seed=9, cpu_noise_factor=0.08)
    spec = _spec(faults=plan, profile=True)
    serial = run_simulation(spec)
    part = run_simulation(replace(spec, pdes_workers=2))
    assert serial.fault_stats == part.fault_stats
    # Same task population in both profiles.
    s_tasks = serial.profile.to_dict().get("tasks")
    p_tasks = part.profile.to_dict().get("tasks")
    assert s_tasks == p_tasks

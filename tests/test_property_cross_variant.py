"""Property test: the three variants compute identical physics for
randomly placed objects (the reproduction's core functional guarantee)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AmrConfig, laptop, run_simulation, sphere


@settings(max_examples=6, deadline=None)
@given(
    cx=st.floats(min_value=0.15, max_value=0.85),
    cy=st.floats(min_value=0.15, max_value=0.85),
    cz=st.floats(min_value=0.15, max_value=0.85),
    r=st.floats(min_value=0.08, max_value=0.3),
    mx=st.floats(min_value=-0.08, max_value=0.08),
)
def test_property_variants_agree_for_random_objects(cx, cy, cz, r, mx):
    objects = (sphere(center=(cx, cy, cz), radius=r, move=(mx, 0.0, 0.0)),)
    base = dict(
        nx=4, ny=4, nz=4, num_vars=2,
        num_tsteps=2, stages_per_ts=3, refine_freq=1, checksum_freq=3,
        max_refine_level=1, objects=objects,
    )
    results = {}
    for variant in ("mpi_only", "fork_join", "tampi_dataflow"):
        if variant == "mpi_only":
            cfg = AmrConfig(npx=2, npy=2, npz=1, init_x=1, init_y=1,
                            init_z=2, **base)
            rpn = 4
        else:
            cfg = AmrConfig(npx=2, npy=1, npz=1, init_x=1, init_y=2,
                            init_z=2, **base)
            rpn = 2
        results[variant] = run_simulation(
            cfg, laptop(), variant=variant, num_nodes=1, ranks_per_node=rpn
        )

    blocks = {v: r_.num_blocks for v, r_ in results.items()}
    assert len(set(blocks.values())) == 1, blocks

    ref = results["mpi_only"].checksums
    assert ref  # at least one validation happened
    for variant in ("fork_join", "tampi_dataflow"):
        other = results[variant].checksums
        assert len(other) == len(ref)
        for (_, a, _), (_, b, _) in zip(ref, other):
            assert np.max(np.abs(a - b) / np.abs(a)) < 1e-12, variant

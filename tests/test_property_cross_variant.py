"""Property test: the three variants compute identical physics for
randomly placed objects (the reproduction's core functional guarantee)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AmrConfig, laptop, run_simulation, sphere
from repro.core import RunSpec


@settings(max_examples=6, deadline=None)
@given(
    cx=st.floats(min_value=0.15, max_value=0.85),
    cy=st.floats(min_value=0.15, max_value=0.85),
    cz=st.floats(min_value=0.15, max_value=0.85),
    r=st.floats(min_value=0.08, max_value=0.3),
    mx=st.floats(min_value=-0.08, max_value=0.08),
)
def test_property_variants_agree_for_random_objects(cx, cy, cz, r, mx):
    objects = (sphere(center=(cx, cy, cz), radius=r, move=(mx, 0.0, 0.0)),)
    base = dict(
        nx=4, ny=4, nz=4, num_vars=2,
        num_tsteps=2, stages_per_ts=3, refine_freq=1, checksum_freq=3,
        max_refine_level=1, objects=objects,
    )
    results = {}
    for variant in ("mpi_only", "fork_join", "tampi_dataflow"):
        if variant == "mpi_only":
            cfg = AmrConfig(npx=2, npy=2, npz=1, init_x=1, init_y=1,
                            init_z=2, **base)
            rpn = 4
        else:
            cfg = AmrConfig(npx=2, npy=1, npz=1, init_x=1, init_y=2,
                            init_z=2, **base)
            rpn = 2
        results[variant] = run_simulation(RunSpec(
            config=cfg, machine=laptop(), variant=variant, num_nodes=1,
            ranks_per_node=rpn,
        ))

    blocks = {v: r_.num_blocks for v, r_ in results.items()}
    assert len(set(blocks.values())) == 1, blocks

    ref = results["mpi_only"].checksums
    assert ref  # at least one validation happened
    for variant in ("fork_join", "tampi_dataflow"):
        other = results[variant].checksums
        assert len(other) == len(ref)
        for (_, a, _), (_, b, _) in zip(ref, other):
            assert np.max(np.abs(a - b) / np.abs(a)) < 1e-12, variant


# ----------------------------------------------------------------------
# Stress configs x all variants x both deterministic schedulers
# ----------------------------------------------------------------------
def _stress_base(name):
    """Two adversarial workloads: refinement churn and forced rebalancing."""
    if name == "refine_heavy":
        # A fast-moving object refined every timestep, two levels deep:
        # maximum split/consolidate and exchange traffic.
        return dict(
            nx=4, ny=4, nz=4, num_vars=2,
            num_tsteps=3, stages_per_ts=2, refine_freq=1, checksum_freq=2,
            max_refine_level=2,
            objects=(sphere(center=(0.25, 0.4, 0.5), radius=0.14,
                            move=(0.18, 0.05, 0.0)),),
        )
    # load_balance: a small off-center object concentrates every refined
    # block on one rank, forcing the ACK-gated exchange to move blocks.
    return dict(
        nx=4, ny=4, nz=4, num_vars=2,
        num_tsteps=2, stages_per_ts=3, refine_freq=1, checksum_freq=3,
        max_refine_level=1, lb_method="rcb",
        objects=(sphere(center=(0.2, 0.2, 0.2), radius=0.12,
                        move=(0.3, 0.3, 0.0)),),
    )


def _stress_spec(workload, variant, scheduler):
    base = _stress_base(workload)
    if variant == "mpi_only":
        cfg = AmrConfig(npx=2, npy=2, npz=1, init_x=1, init_y=1, init_z=2,
                        **base)
        rpn = 4
    else:
        cfg = AmrConfig(npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
                        **base)
        rpn = 2
    return RunSpec(config=cfg, machine="laptop", variant=variant,
                   num_nodes=1, ranks_per_node=rpn, scheduler=scheduler)


@pytest.mark.parametrize("workload", ["refine_heavy", "load_balance"])
def test_stress_configs_agree_across_variants_and_schedulers(workload):
    results = {}
    for variant in ("mpi_only", "fork_join", "tampi_dataflow"):
        for scheduler in ("locality", "fifo"):
            results[variant, scheduler] = run_simulation(
                _stress_spec(workload, variant, scheduler)
            )

    # Within a variant the scheduler is a pure performance knob: the
    # checksum log must be bitwise identical under locality and fifo.
    for variant in ("mpi_only", "fork_join", "tampi_dataflow"):
        a = results[variant, "locality"].checksums
        b = results[variant, "fifo"].checksums
        assert len(a) == len(b) and a, variant
        for (_, ca, _), (_, cb, _) in zip(a, b):
            assert ca.tobytes() == cb.tobytes(), variant

    # The two hybrids share a rank grid, so their reductions commute
    # identically: bitwise agreement across variants too.
    fj = results["fork_join", "locality"].checksums
    td = results["tampi_dataflow", "locality"].checksums
    for (_, ca, _), (_, cb, _) in zip(fj, td):
        assert ca.tobytes() == cb.tobytes()

    # MPI-only reduces over a different rank decomposition: agreement to
    # floating-point reassociation error only.
    ref = results["mpi_only", "locality"]
    for variant in ("fork_join", "tampi_dataflow"):
        other = results[variant, "locality"]
        assert other.num_blocks == ref.num_blocks
        assert len(other.checksums) == len(ref.checksums)
        for (_, a, _), (_, b, _) in zip(ref.checksums, other.checksums):
            assert np.max(np.abs(a - b) / np.abs(a)) < 1e-12, variant

"""Tests for the Task-Aware MPI layer: request-to-task binding semantics."""

import pytest

from repro import tampi
from repro.machine import CostSpec, Machine, NetworkSpec, NodeSpec
from repro.mpi import World
from repro.simx import Environment
from repro.tasking import RankRuntime

FREE = CostSpec(task_spawn_overhead=0.0, task_dispatch_overhead=0.0,
                noise_amplitude=0.0, noise_spike_rate=0.0)


def make_setup(num_ranks=2, cores_per_rank=2):
    env = Environment()
    machine = Machine(
        node=NodeSpec(
            cores_per_node=num_ranks * cores_per_rank, sockets_per_node=1
        ),
        num_nodes=1,
        ranks_per_node=num_ranks,
    )
    world = World(env, machine, NetworkSpec())
    runtimes = [
        RankRuntime(env, rank=r, num_cores=cores_per_rank, cost_spec=FREE)
        for r in range(num_ranks)
    ]
    return env, world, runtimes


def test_isend_task_completes_only_when_message_lands():
    """A TAMPI send task's dependencies are released at message landing."""
    env, world, (rt0, rt1) = make_setup()
    log = []

    def send_body(ctx):
        yield from tampi.isend(
            ctx, world.comm(0), dest=1, tag=1, nbytes=1 << 20
        )
        log.append(("body-done", env.now))

    def sender_main():
        yield from rt0.spawn("send", body=send_body, ins=["buf"])
        yield from rt0.spawn(
            "reuse", body=lambda: log.append(("reuse", env.now)), outs=["buf"]
        )
        yield from rt0.taskwait()

    def receiver_main():
        yield from world.comm(1).recv(source=0, tag=1)

    env.process(sender_main())
    env.process(receiver_main())
    env.run()

    body_done = dict(log)["body-done"]
    reuse = dict(log)["reuse"]
    # The body finishes long before the 1 MiB message lands; the buffer
    # reuse task must wait for the landing (dependency held by TAMPI).
    assert reuse > body_done
    transit = NetworkSpec().transit_time(1 << 20, same_node=True)
    assert reuse >= body_done + transit * 0.5


def test_irecv_data_available_to_successor():
    env, world, (rt0, rt1) = make_setup()
    received = []
    holder = {}

    def recv_body(ctx):
        req = yield from tampi.irecv(
            ctx, world.comm(1), source=0, tag=2, nbytes=64
        )
        holder["req"] = req
        # Note: data NOT consumed here (may not have arrived yet).

    def unpack_body():
        received.append(holder["req"].data)

    def receiver_main():
        yield from rt1.spawn("recv", body=recv_body, outs=["rbuf"])
        yield from rt1.spawn("unpack", body=unpack_body, ins=["rbuf"])
        yield from rt1.taskwait()

    def sender_main():
        yield env.timeout(3.0)
        yield from world.comm(0).send(dest=1, tag=2, payload="ghost-face")

    env.process(receiver_main())
    env.process(sender_main())
    env.run()
    assert received == ["ghost-face"]


def test_iwaitall_binds_multiple_requests():
    env, world, (rt0, rt1) = make_setup()
    unpack_times = []

    def recv_body(ctx):
        reqs = []
        for tag in (10, 11, 12):
            req = yield from world.comm(1).irecv(source=0, tag=tag)
            reqs.append(req)
        tampi.iwaitall(ctx, reqs)

    def receiver_main():
        yield from rt1.spawn("recv-all", body=recv_body, outs=["faces"])
        yield from rt1.spawn(
            "consume",
            body=lambda: unpack_times.append(env.now),
            ins=["faces"],
        )
        yield from rt1.taskwait()

    def sender_main():
        comm = world.comm(0)
        for i, tag in enumerate((10, 11, 12)):
            yield env.timeout(2.0)  # staggered sends: last at t=6
            yield from comm.send(dest=1, tag=tag, payload=i)

    env.process(receiver_main())
    env.process(sender_main())
    env.run()
    # Consumer runs only after the LAST of the three messages arrived.
    assert unpack_times[0] > 6.0


def test_iwait_on_completed_request_is_noop():
    env, world, (rt0, rt1) = make_setup()
    done = []

    def recv_body(ctx):
        req = yield from world.comm(1).irecv(source=0, tag=5)
        if not req.completed:
            yield req.event  # wait inside the body
        tampi.iwait(ctx, req)  # binding now must not deadlock
        done.append(req.data)

    def receiver_main():
        yield from rt1.spawn("recv", body=recv_body)
        yield from rt1.taskwait()

    def sender_main():
        yield from world.comm(0).send(dest=1, tag=5, payload="x")

    env.process(receiver_main())
    env.process(sender_main())
    env.run()
    assert done == ["x"]


def test_blocking_send_recv_inside_tasks():
    env, world, (rt0, rt1) = make_setup()
    got = []

    def send_body(ctx):
        yield from tampi.send(ctx, world.comm(0), dest=1, tag=9, payload="blk")

    def recv_body(ctx):
        req = yield from tampi.recv(ctx, world.comm(1), source=0, tag=9)
        got.append(req.data)  # blocking mode: safe to consume in-body

    def main0():
        yield from rt0.spawn("bsend", body=send_body)
        yield from rt0.taskwait()

    def main1():
        yield from rt1.spawn("brecv", body=recv_body)
        yield from rt1.taskwait()

    env.process(main0())
    env.process(main1())
    env.run()
    assert got == ["blk"]


def test_computation_overlaps_inflight_communication():
    """The defining behaviour: while a TAMPI recv is in flight, other tasks
    keep executing on the rank's cores."""
    env, world, (rt0, rt1) = make_setup(cores_per_rank=2)
    stencil_times = []

    def recv_body(ctx):
        yield from tampi.irecv(ctx, world.comm(1), source=0, tag=3)

    def receiver_main():
        yield from rt1.spawn("recv", body=recv_body, outs=["ghost"])
        for i in range(4):
            yield from rt1.spawn(
                f"stencil{i}",
                cost=1.0,
                body=lambda: stencil_times.append(env.now),
            )
        yield from rt1.spawn("unpack", ins=["ghost"])
        yield from rt1.taskwait()

    def sender_main():
        yield env.timeout(10.0)
        yield from world.comm(0).send(dest=1, tag=3, payload="late")

    env.process(receiver_main())
    env.process(sender_main())
    env.run()
    # All four independent stencils completed well before the message at
    # t=10: communication wait did not block the cores.
    assert len(stencil_times) == 4
    assert max(stencil_times) < 10.0
    assert env.now >= 10.0  # run ended after the late message


def test_bind_request_to_completed_task_rejected():
    env, world, (rt0, rt1) = make_setup()

    def main():
        task = yield from rt0.spawn("t", cost=0.0)
        yield from rt0.taskwait()
        req = yield from world.comm(0).irecv(source=1, tag=0)
        with pytest.raises(ValueError):
            rt0.bind_request(task, req)
        # Unblock the pending receive so the run drains.
        yield from world.comm(1).send(dest=0, tag=0, payload=None)

    env.process(main())
    env.run()

"""Tests for block payloads: stencil, faces, split/consolidate, checksum."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr import AmrConfig, BlockId
from repro.amr.block import (
    Block,
    consolidate_blocks,
    prolong_plane,
    restrict_plane,
    split_block,
)
from repro.amr.ids import FACES, HI, LO


def small_config(payload="real", nx=4, num_vars=3):
    return AmrConfig(
        npx=1, npy=1, npz=1, init_x=2, init_y=2, init_z=2,
        nx=nx, ny=nx, nz=nx, num_vars=num_vars, payload=payload,
    )


def make_block(cfg, level=0, coords=(0, 0, 0)):
    return Block.initial(BlockId(level, *coords), cfg)


ALL_VARS = slice(0, 3)


# ----------------------------------------------------------------------
# Initialization & checksum
# ----------------------------------------------------------------------
def test_initial_real_block_shape():
    cfg = small_config()
    b = make_block(cfg)
    assert b.is_real
    assert b.data.shape == (3, 6, 6, 6)
    # Ghosts start at zero.
    assert b.data[:, 0, :, :].sum() == 0.0


def test_initial_synthetic_block_has_surrogate():
    cfg = small_config(payload="synthetic")
    b = make_block(cfg)
    assert not b.is_real
    assert b.surrogate.shape == (3,)


def test_checksum_matches_interior_sum():
    cfg = small_config()
    b = make_block(cfg)
    expected = b.data[:, 1:-1, 1:-1, 1:-1].sum(axis=(1, 2, 3))
    assert np.allclose(b.checksum(ALL_VARS), expected)


def test_synthetic_checksum_equals_real_checksum_initially():
    """The surrogate is constructed to match the real interior sums."""
    real = make_block(small_config("real"))
    synth = make_block(small_config("synthetic"))
    assert np.allclose(real.checksum(ALL_VARS), synth.checksum(ALL_VARS))


# ----------------------------------------------------------------------
# Stencil
# ----------------------------------------------------------------------
def test_stencil_uniform_field_is_fixed_point():
    cfg = small_config()
    b = make_block(cfg)
    b.data[:, 1:-1, 1:-1, 1:-1] = 5.0
    b.fill_boundary_ghosts(ALL_VARS, FACES)  # all faces open
    b.stencil7(ALL_VARS)
    assert np.allclose(b.data[:, 1:-1, 1:-1, 1:-1], 5.0)


def test_stencil_averages_neighbors():
    cfg = small_config(num_vars=1)
    b = make_block(cfg)
    vs = slice(0, 1)
    b.data[...] = 0.0
    # Put a spike in the center; after one stencil it spreads by 1/7.
    b.data[0, 3, 3, 3] = 7.0
    b.stencil7(vs)
    assert b.data[0, 3, 3, 3] == pytest.approx(1.0)
    assert b.data[0, 2, 3, 3] == pytest.approx(1.0)
    assert b.data[0, 2, 2, 3] == pytest.approx(0.0)


def test_stencil_noop_on_synthetic():
    cfg = small_config(payload="synthetic")
    b = make_block(cfg)
    before = b.surrogate.copy()
    b.stencil7(ALL_VARS)
    assert np.array_equal(b.surrogate, before)


def test_boundary_ghost_reflection():
    cfg = small_config(num_vars=1)
    b = make_block(cfg)
    vs = slice(0, 1)
    b.data[0, 1, :, :] = 9.0
    b.fill_boundary_ghosts(vs, [(0, LO)])
    assert np.all(b.data[0, 0, :, :] == 9.0)


# ----------------------------------------------------------------------
# Faces
# ----------------------------------------------------------------------
def test_extract_insert_face_roundtrip():
    cfg = small_config(num_vars=2)
    vs = slice(0, 2)
    src = make_block(cfg)
    dst = make_block(cfg, coords=(1, 0, 0))
    plane = src.extract_face(0, HI, vs)
    assert plane.shape == (2, 4, 4)
    dst.insert_ghost(0, LO, vs, plane)
    assert np.allclose(dst.data[vs, 0, 1:-1, 1:-1], plane)


def test_extract_face_sides_differ():
    cfg = small_config(num_vars=1)
    b = make_block(cfg)
    vs = slice(0, 1)
    b.data[0, 1, 1:-1, 1:-1] = 1.0
    b.data[0, -2, 1:-1, 1:-1] = 2.0
    assert np.all(b.extract_face(0, LO, vs) == 1.0)
    assert np.all(b.extract_face(0, HI, vs) == 2.0)


def test_restrict_plane_averages_2x2():
    plane = np.arange(16, dtype=float).reshape(1, 4, 4)
    r = restrict_plane(plane)
    assert r.shape == (1, 2, 2)
    assert r[0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)


def test_prolong_plane_replicates():
    quarter = np.array([[[1.0, 2.0], [3.0, 4.0]]])
    p = prolong_plane(quarter)
    assert p.shape == (1, 4, 4)
    assert p[0, 0, 0] == p[0, 1, 1] == 1.0
    assert p[0, 2, 3] == 4.0


def test_restrict_then_prolong_preserves_mean():
    rng = np.random.default_rng(42)
    plane = rng.random((3, 8, 8))
    rp = prolong_plane(restrict_plane(plane))
    assert rp.mean() == pytest.approx(plane.mean())


def test_face_quadrant_insert():
    cfg = small_config(num_vars=1)
    vs = slice(0, 1)
    b = make_block(cfg)
    quarter = np.full((1, 2, 2), 3.5)
    b.insert_ghost_quadrant(0, LO, vs, (1, 0), quarter)
    ghost = b.data[vs, 0, 1:-1, 1:-1]
    assert np.all(ghost[0, 2:, :2] == 3.5)
    assert np.all(ghost[0, :2, :] == 0.0)


def test_extract_face_quadrant():
    cfg = small_config(num_vars=1)
    vs = slice(0, 1)
    b = make_block(cfg)
    b.data[0, -2, 1:-1, 1:-1] = np.arange(16).reshape(4, 4)
    q = b.extract_face_quadrant(0, HI, vs, (0, 1))
    assert q.shape == (1, 2, 2)
    assert q[0, 0, 0] == 2  # rows 0-1, cols 2-3


# ----------------------------------------------------------------------
# Split / consolidate
# ----------------------------------------------------------------------
def test_split_conserves_totals():
    cfg = small_config()
    b = make_block(cfg)
    total = b.checksum(ALL_VARS)
    children = split_block(b, cfg)
    assert len(children) == 8
    child_total = sum(c.checksum(ALL_VARS) for c in children.values())
    assert np.allclose(child_total, total)


def test_split_consolidate_roundtrip():
    cfg = small_config()
    b = make_block(cfg)
    original = b.data.copy()
    children = split_block(b, cfg)
    merged = consolidate_blocks(b.bid, children, cfg)
    assert np.allclose(
        merged.data[:, 1:-1, 1:-1, 1:-1], original[:, 1:-1, 1:-1, 1:-1]
    )


def test_split_conserves_totals_synthetic():
    cfg = small_config(payload="synthetic")
    b = make_block(cfg)
    total = b.checksum(ALL_VARS)
    children = split_block(b, cfg)
    child_total = sum(c.checksum(ALL_VARS) for c in children.values())
    assert np.allclose(child_total, total)
    merged = consolidate_blocks(b.bid, children, cfg)
    assert np.allclose(merged.checksum(ALL_VARS), total)


def test_consolidate_missing_child_rejected():
    cfg = small_config()
    b = make_block(cfg)
    children = split_block(b, cfg)
    children.popitem()
    with pytest.raises(ValueError, match="missing children"):
        consolidate_blocks(b.bid, children, cfg)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_split_consolidate_identity(seed):
    """split → consolidate is the identity on interiors, for random data."""
    cfg = small_config(num_vars=2)
    b = make_block(cfg)
    rng = np.random.default_rng(seed)
    b.data[:, 1:-1, 1:-1, 1:-1] = rng.random((2, 4, 4, 4))
    interior = b.data[:, 1:-1, 1:-1, 1:-1].copy()
    merged = consolidate_blocks(b.bid, split_block(b, cfg), cfg)
    assert np.allclose(merged.data[:, 1:-1, 1:-1, 1:-1], interior)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_split_conserves_random_totals(seed):
    cfg = small_config(num_vars=2)
    b = make_block(cfg)
    rng = np.random.default_rng(seed)
    b.data[:, 1:-1, 1:-1, 1:-1] = rng.random((2, 4, 4, 4)) * 100
    vs = slice(0, 2)
    total = b.checksum(vs)
    children = split_block(b, cfg)
    child_total = sum(c.checksum(vs) for c in children.values())
    assert np.allclose(child_total, total)

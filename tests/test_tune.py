"""repro.tune: spec validation, strategies, materialization, run_tune.

The load-bearing contract is determinism: identical ``TuneSpec`` + seed
must serialize to a byte-identical ``TuneReport`` regardless of worker
count or cache state.  The end-to-end tests here enforce exactly that,
alongside the unit behavior of each moving part.
"""

import json
import types

import pytest

from repro import AmrConfig, RunSpec, sphere
from repro.exec import ResultCache, SweepEngine
from repro.tune import (
    GridStrategy,
    RandomStrategy,
    SuccessiveHalving,
    TuneReport,
    TuneSpec,
    canonical_key,
    dependency_bound_fraction,
    enumerate_space,
    materialize,
    run_tune,
    with_tier,
)


def small_config(**overrides):
    kwargs = dict(
        npx=2, npy=1, npz=1, init_x=2, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1, stages_per_ts=4,
        refine_freq=2, checksum_freq=4, max_refine_level=1,
        payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    kwargs.update(overrides)
    return AmrConfig(**kwargs)


def base_spec(**overrides):
    kwargs = dict(
        config=small_config(), machine="laptop",
        variant="tampi_dataflow", num_nodes=1, ranks_per_node=2,
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


def variant_tune(**overrides):
    kwargs = dict(
        base=base_spec(),
        space={"variant": ("mpi_only", "fork_join", "tampi_dataflow")},
    )
    kwargs.update(overrides)
    return TuneSpec(**kwargs)


# ----------------------------------------------------------------------
# TuneSpec
# ----------------------------------------------------------------------
class TestTuneSpec:
    def test_space_is_normalized_sorted_with_tuple_values(self):
        tune = TuneSpec(
            base=base_spec(),
            space={"variant": ["mpi_only"], "scheduler": ["fifo"]},
        )
        assert list(tune.space) == ["scheduler", "variant"]
        assert tune.space["variant"] == ("mpi_only",)

    def test_rejects_bad_spaces(self):
        base = base_spec()
        with pytest.raises(ValueError, match="at least one axis"):
            TuneSpec(base=base, space={})
        with pytest.raises(ValueError, match="unknown axis"):
            TuneSpec(base=base, space={"turbo": (1,)})
        with pytest.raises(ValueError, match="repeats"):
            TuneSpec(base=base, space={"ranks_per_node": (2, 2)})
        with pytest.raises(ValueError, match="no values"):
            TuneSpec(base=base, space={"variant": ()})
        with pytest.raises(ValueError, match="must be positive"):
            TuneSpec(base=base, space={"ranks_per_node": (0,)})
        with pytest.raises(ValueError, match="must be ints"):
            TuneSpec(base=base, space={"ranks_per_node": (True,)})
        # max_comm_tasks legitimately allows 0 (= uncapped).
        TuneSpec(base=base, space={"max_comm_tasks": (0, 2)})

    def test_budget_zero_is_grid_only(self):
        with pytest.raises(ValueError, match="needs an explicit budget"):
            variant_tune(strategy="random")
        with pytest.raises(ValueError, match="needs an explicit budget"):
            variant_tune(strategy="halving")
        assert variant_tune(strategy="random", budget=2).budget == 2

    def test_tiers_validation(self):
        with pytest.raises(ValueError, match="end at 1.0"):
            variant_tune(tiers=(0.25, 0.5))
        with pytest.raises(ValueError, match="ascending"):
            variant_tune(tiers=(0.5, 0.5, 1.0))
        with pytest.raises(ValueError, match=r"in \(0, 1\]"):
            variant_tune(tiers=(-0.5, 1.0))

    def test_roundtrip_and_fingerprint(self):
        tune = variant_tune(strategy="random", budget=2, seed=7,
                            robustness=0.5, name="t")
        again = TuneSpec.from_dict(json.loads(json.dumps(tune.to_dict())))
        assert again == tune
        assert again.fingerprint() == tune.fingerprint()
        assert variant_tune().fingerprint() != tune.fingerprint()
        assert variant_tune(seed=1).fingerprint() != (
            variant_tune(seed=2).fingerprint()
        )

    def test_from_dict_rejects_unknown_fields(self):
        data = variant_tune().to_dict()
        data["walltime"] = 60
        with pytest.raises(ValueError, match="unknown TuneSpec fields"):
            TuneSpec.from_dict(data)

    def test_space_size_and_objective_direction(self):
        tune = TuneSpec(
            base=base_spec(),
            space={"variant": ("mpi_only", "fork_join"),
                   "ranks_per_node": (1, 2, 4)},
        )
        assert tune.space_size() == 6
        assert tune.minimize
        assert not variant_tune(objective="gflops").minimize
        assert variant_tune(objective="overlap_fraction").needs_profile


# ----------------------------------------------------------------------
# Strategies (pure candidate logic)
# ----------------------------------------------------------------------
class TestStrategies:
    def test_enumerate_space_is_canonical(self):
        space = {"variant": ("b", "a"), "ranks_per_node": (2, 1)}
        assert enumerate_space(space) == [
            {"ranks_per_node": 2, "variant": "b"},
            {"ranks_per_node": 2, "variant": "a"},
            {"ranks_per_node": 1, "variant": "b"},
            {"ranks_per_node": 1, "variant": "a"},
        ]

    def test_grid_truncates_to_budget_and_counts_it(self):
        candidates = enumerate_space({"ranks_per_node": (1, 2, 4, 8)})
        full = GridStrategy(candidates)
        assert full.plan == candidates and full.truncated == 0
        cut = GridStrategy(candidates, budget=3)
        assert cut.plan == candidates[:3] and cut.truncated == 1

    def test_random_is_seeded_and_without_replacement(self):
        candidates = enumerate_space({"ranks_per_node": tuple(range(1, 9))})
        a = RandomStrategy(candidates, budget=5, seed=3)
        b = RandomStrategy(candidates, budget=5, seed=3)
        assert a.plan == b.plan and len(a.plan) == 5
        keys = [canonical_key(x) for x in a.plan]
        assert len(set(keys)) == 5
        assert all(x in candidates for x in a.plan)
        assert a.truncated == 3
        assert RandomStrategy(candidates, 5, seed=4).plan != a.plan

    def test_halving_sizes_fill_the_budget(self):
        candidates = enumerate_space({"ranks_per_node": tuple(range(1, 9))})
        s = SuccessiveHalving(candidates, budget=6, seed=0,
                              tiers=(0.5, 1.0), eta=2, minimize=True)
        assert s.rung_sizes == [4, 2]
        assert len(s.initial()) == 4
        assert s.truncated == 4

    def test_halving_rejects_starving_budget(self):
        candidates = enumerate_space({"ranks_per_node": (1, 2)})
        with pytest.raises(ValueError, match="cannot fund"):
            SuccessiveHalving(candidates, budget=1, seed=0,
                              tiers=(0.5, 1.0), eta=2, minimize=True)

    def test_promote_keeps_the_observed_best(self):
        candidates = enumerate_space({"ranks_per_node": (1, 2, 3, 4)})
        s = SuccessiveHalving(candidates, budget=6, seed=0,
                              tiers=(0.5, 1.0), eta=2, minimize=True)
        scored = [
            ({"ranks_per_node": 1}, 4.0),
            ({"ranks_per_node": 2}, 1.0),
            ({"ranks_per_node": 3}, None),  # failed: never promotes
            ({"ranks_per_node": 4}, 2.0),
        ]
        assert s.promote(scored, 0) == [
            {"ranks_per_node": 2}, {"ranks_per_node": 4},
        ]
        assert s.promote(scored, 1) == []  # past the last tier

    def test_promote_maximizing_flips_the_order(self):
        candidates = enumerate_space({"ranks_per_node": (1, 2, 3, 4)})
        s = SuccessiveHalving(candidates, budget=6, seed=0,
                              tiers=(0.5, 1.0), eta=2, minimize=False)
        scored = [({"ranks_per_node": n}, float(n)) for n in (1, 2, 3, 4)]
        assert s.promote(scored, 0) == [
            {"ranks_per_node": 4}, {"ranks_per_node": 3},
        ]


# ----------------------------------------------------------------------
# Materialization
# ----------------------------------------------------------------------
class TestMaterialize:
    def test_spec_axes_replace_runspec_fields(self):
        tune = TuneSpec(
            base=base_spec(),
            space={"variant": ("mpi_only",), "scheduler": ("fifo",),
                   "pdes_workers": (2,)},
        )
        spec = materialize(tune, {
            "variant": "mpi_only", "scheduler": "fifo", "pdes_workers": 2,
        })
        assert spec.variant == "mpi_only"
        assert spec.scheduler == "fifo"
        assert spec.pdes_workers == 2
        assert spec.config == tune.base.config

    def test_nx_axis_sets_a_cubic_block(self):
        tune = TuneSpec(base=base_spec(), space={"nx": (8,)})
        cfg = materialize(tune, {"nx": 8}).config
        assert (cfg.nx, cfg.ny, cfg.nz) == (8, 8, 8)
        assert cfg.num_tsteps == tune.base.config.num_tsteps

    def test_ranks_per_node_refits_the_grid(self):
        tune = TuneSpec(base=base_spec(), space={"ranks_per_node": (4,)})
        spec = materialize(tune, {"ranks_per_node": 4})
        assert spec.ranks_per_node == 4
        assert spec.config.num_ranks == 4
        assert spec.config.root_dims == tune.base.config.root_dims

    def test_undividable_grid_is_infeasible(self):
        tune = TuneSpec(base=base_spec(), space={"ranks_per_node": (32,)})
        with pytest.raises(ValueError):
            materialize(tune, {"ranks_per_node": 32})

    def test_with_tier_scales_stages_with_a_floor(self):
        spec = base_spec()
        assert with_tier(spec, 1.0) is spec
        assert with_tier(spec, 0.5).config.stages_per_ts == 2
        assert with_tier(spec, 0.01).config.stages_per_ts == 1

    def test_dependency_bound_fraction(self):
        assert dependency_bound_fraction(None) is None
        empty = types.SimpleNamespace(idle={"by_blocker": {}})
        assert dependency_bound_fraction(empty) == 0.0
        profile = types.SimpleNamespace(idle={"by_blocker": {
            "dependency": 3.0, "no_ready_work": 1.0, "transit": 4.0,
        }})
        assert dependency_bound_fraction(profile) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# run_tune end to end
# ----------------------------------------------------------------------
class TestRunTune:
    def test_grid_ranks_all_candidates_against_the_baseline(self):
        report = run_tune(variant_tune())
        assert [e["rank"] for e in report.entries] == [1, 2, 3]
        scores = [e["score"] for e in report.entries]
        assert scores == sorted(scores)
        assert report.evaluations == 3
        assert report.baseline is not None
        # The base variant is in the space, so the winner cannot lose
        # to the yardstick.
        assert report.improvement_over_baseline() >= 0
        for entry in report.entries:
            assert "overlap_fraction" in entry["metrics"]
            assert "dependency_bound_fraction" in entry["metrics"]

    def test_report_is_byte_identical_across_engines_and_caches(
        self, tmp_path
    ):
        tune = variant_tune(robustness=0.5, top_k=2)
        serial = run_tune(tune).to_json()
        cache = ResultCache(tmp_path / "cache")
        cold = run_tune(tune, engine=SweepEngine(jobs=2, cache=cache))
        warm = run_tune(tune, engine=SweepEngine(jobs=1, cache=cache))
        assert cold.to_json() == serial
        assert warm.to_json() == serial

    def test_infeasible_candidates_are_ledgered_not_evaluated(self):
        tune = TuneSpec(
            base=base_spec(), space={"ranks_per_node": (2, 32)},
        )
        report = run_tune(tune)
        assert report.evaluations == 1
        assert len(report.entries) == 1
        assert report.infeasible[0]["assignment"] == {
            "ranks_per_node": 32,
        }

    def test_grid_budget_truncates_and_reports_it(self):
        report = run_tune(variant_tune(budget=2))
        assert report.evaluations == 2
        assert report.truncated == 1
        assert "unexplored" in report.ascii()

    def test_dependency_bound_family_prunes_higher_rpn(self, monkeypatch):
        monkeypatch.setattr(
            "repro.tune.engine.dependency_bound_fraction",
            lambda profile: None if profile is None else 0.97,
        )
        tune = TuneSpec(
            base=base_spec(), space={"ranks_per_node": (1, 2, 4)},
        )
        report = run_tune(tune)
        assert [e["assignment"] for e in report.entries] == [
            {"ranks_per_node": 1},
        ]
        assert [p["assignment"] for p in report.pruned] == [
            {"ranks_per_node": 2}, {"ranks_per_node": 4},
        ]
        evidence = report.pruned[0]["evidence"]
        assert evidence["ranks_per_node"] == 1
        assert evidence["dependency_bound_fraction"] == pytest.approx(0.97)
        assert "dependency-bound" in report.pruned[0]["reason"]

    def test_prune_false_evaluates_the_whole_family(self, monkeypatch):
        monkeypatch.setattr(
            "repro.tune.engine.dependency_bound_fraction",
            lambda profile: None if profile is None else 0.97,
        )
        tune = TuneSpec(
            base=base_spec(), space={"ranks_per_node": (1, 2, 4)},
            prune=False,
        )
        report = run_tune(tune)
        assert len(report.entries) == 3
        assert report.pruned == []

    def test_robustness_rescoring_annotates_finalists(self):
        report = run_tune(variant_tune(robustness=1.0, top_k=2))
        assert report.evaluations == 5  # 3 search + 2 robustness
        robust = [e["robust_score"] for e in report.entries]
        assert robust[0] is not None and robust[1] is not None
        assert robust[2] is None
        assert report.entries[0]["robustness_delta"] is not None
        # Noisy finalists stay ordered by the noisy score.
        assert robust[0] <= robust[1]

    def test_halving_ranks_only_full_fidelity_survivors(self):
        tune = variant_tune(strategy="halving", budget=5, seed=1,
                            tiers=(0.5, 1.0), eta=2)
        report = run_tune(tune)
        # Ladder: 3 cheap + 1 full within budget 5.
        assert report.evaluations == 4
        assert len(report.entries) == 1
        assert report.entries[0]["tier"] == 1.0

    def test_telemetry_records_the_tune_lifecycle(self, tmp_path):
        from repro.obs.telemetry import TelemetryBus

        stream = tmp_path / "tune.jsonl"
        engine = SweepEngine(jobs=1, telemetry=TelemetryBus(stream))
        report = run_tune(variant_tune(), engine=engine)
        records = [
            json.loads(line)
            for line in stream.read_text().splitlines()
        ]
        types_seen = [r["type"] for r in records]
        assert "tune_start" in types_seen
        assert "tune_round" in types_seen
        assert "tune_stop" in types_seen
        start = next(r for r in records if r["type"] == "tune_start")
        assert start["space"] == 3 and start["feasible"] == 3
        stop = next(r for r in records if r["type"] == "tune_stop")
        assert stop["best"] == canonical_key(
            report.entries[0]["assignment"]
        )

    def test_report_roundtrips_through_json(self):
        report = run_tune(variant_tune())
        again = TuneReport.from_dict(json.loads(report.to_json()))
        assert again.to_json() == report.to_json()
        assert again.best == report.entries[0]


# ----------------------------------------------------------------------
# TuneReport (synthetic)
# ----------------------------------------------------------------------
class TestTuneReport:
    def _report(self, objective, baseline_score, best_score):
        return TuneReport(
            name="t", objective=objective, strategy="grid", budget=0,
            seed=0, space={"variant": ("a",)}, fingerprint="f" * 64,
            baseline={"assignment": {}, "fingerprint": "b" * 64,
                      "score": baseline_score, "metrics": {}},
            entries=[{
                "rank": 1, "assignment": {"variant": "a"},
                "fingerprint": "c" * 64, "tier": 1.0,
                "score": best_score, "metrics": {},
                "robust_score": None, "robustness_delta": None,
            }],
        )

    def test_improvement_sign_follows_the_direction(self):
        assert self._report(
            "total_time", 2.0, 1.5
        ).improvement_over_baseline() == pytest.approx(0.5)
        assert self._report(
            "gflops", 2.0, 1.5
        ).improvement_over_baseline() == pytest.approx(-0.5)
        assert self._report(
            "total_time", None, 1.5
        ).improvement_over_baseline() is None

    def test_ascii_verdicts(self):
        assert "improves on the baseline" in self._report(
            "total_time", 2.0, 1.5
        ).ascii()
        assert "baseline already optimal" in self._report(
            "total_time", 1.5, 1.5
        ).ascii()
        assert "baseline stays best" in self._report(
            "gflops", 2.0, 1.5
        ).ascii()

"""Unit tests for cluster topology, network, and cost models."""

import math

import pytest

from repro.machine import (
    CostSpec,
    Machine,
    NetworkSpec,
    NodeSpec,
    laptop,
    marenostrum4,
    marenostrum4_scaled,
)


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
def test_nodespec_defaults_match_marenostrum4():
    spec = NodeSpec()
    assert spec.cores_per_node == 48
    assert spec.sockets_per_node == 2
    assert spec.cores_per_socket == 24


def test_nodespec_rejects_indivisible_sockets():
    with pytest.raises(ValueError):
        NodeSpec(cores_per_node=10, sockets_per_node=4)


def test_nodespec_rejects_nonpositive_cores():
    with pytest.raises(ValueError):
        NodeSpec(cores_per_node=0)


def test_machine_rank_count():
    m = Machine(node=NodeSpec(), num_nodes=4, ranks_per_node=4)
    assert m.num_ranks == 16
    assert m.cores_per_rank == 12
    assert m.total_cores == 192


def test_machine_rejects_indivisible_ranks():
    with pytest.raises(ValueError):
        Machine(node=NodeSpec(), num_nodes=1, ranks_per_node=5)


def test_placement_is_consecutive():
    m = Machine(node=NodeSpec(), num_nodes=2, ranks_per_node=4)
    p0 = m.placement(0)
    p1 = m.placement(1)
    assert p0.node == 0 and p1.node == 0
    assert [c.local for c in p0.cores] == list(range(12))
    assert [c.local for c in p1.cores] == list(range(12, 24))
    p4 = m.placement(4)
    assert p4.node == 1


def test_one_rank_per_node_spans_numa():
    m = Machine(node=NodeSpec(), num_nodes=1, ranks_per_node=1)
    assert m.placement(0).spans_numa
    assert m.placement(0).socket_span == 2


def test_two_ranks_per_node_do_not_span_numa():
    m = Machine(node=NodeSpec(), num_nodes=1, ranks_per_node=2)
    assert not m.placement(0).spans_numa
    assert not m.placement(1).spans_numa


def test_same_node_predicate():
    m = Machine(node=NodeSpec(), num_nodes=2, ranks_per_node=48)
    assert m.same_node(0, 47)
    assert not m.same_node(0, 48)


def test_ranks_on_node():
    m = Machine(node=NodeSpec(), num_nodes=3, ranks_per_node=4)
    assert list(m.ranks_on_node(1)) == [4, 5, 6, 7]


# ----------------------------------------------------------------------
# Network
# ----------------------------------------------------------------------
def test_transit_intra_faster_than_inter():
    net = NetworkSpec()
    nbytes = 64 * 1024
    assert net.transit_time(nbytes, same_node=True) < net.transit_time(
        nbytes, same_node=False
    )


def test_transit_grows_with_size():
    net = NetworkSpec()
    assert net.transit_time(1 << 20, False) > net.transit_time(1 << 10, False)


def test_transit_negative_size_rejected():
    net = NetworkSpec()
    with pytest.raises(ValueError):
        net.transit_time(-1, False)


def test_send_cpu_time_has_fixed_component():
    net = NetworkSpec()
    assert net.send_cpu_time(0) == pytest.approx(net.send_overhead)
    assert net.send_cpu_time(1 << 20) > net.send_cpu_time(0)


def test_collective_scales_logarithmically():
    net = NetworkSpec()
    t2 = net.collective_time(8, 2)
    t1024 = net.collective_time(8, 1024)
    assert t1024 == pytest.approx(10 * t2)


def test_collective_single_rank_is_cheap():
    net = NetworkSpec()
    assert net.collective_time(8, 1) == pytest.approx(net.collective_round)


def test_collective_invalid_ranks():
    net = NetworkSpec()
    with pytest.raises(ValueError):
        net.collective_time(8, 0)


def test_network_validates_parameters():
    with pytest.raises(ValueError):
        NetworkSpec(latency_inter=0)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def test_stencil_flops_formula():
    cost = CostSpec()
    # 12^3 cells, 20 vars, 7 flops per cell-var.
    assert cost.stencil_flops(12**3, 20) == 12**3 * 20 * 7.0


def test_stencil_locality_boost_speeds_up():
    cost = CostSpec()
    base = cost.stencil_time(1000, 10)
    boosted = cost.stencil_time(1000, 10, locality=True)
    assert boosted < base
    assert base / boosted == pytest.approx(cost.locality_ipc_boost)


def test_stencil_numa_penalty_slows_down():
    cost = CostSpec()
    base = cost.stencil_time(1000, 10)
    penalized = cost.stencil_time(1000, 10, numa=True)
    assert penalized / base == pytest.approx(cost.numa_penalty)


def test_copy_time_linear():
    cost = CostSpec()
    assert cost.copy_time(2 << 20) == pytest.approx(2 * cost.copy_time(1 << 20))


def test_forkjoin_overhead_zero_for_one_thread():
    cost = CostSpec()
    assert cost.forkjoin_overhead(1) == 0.0
    assert cost.forkjoin_overhead(2) > 0.0
    assert cost.forkjoin_overhead(16) == pytest.approx(
        4 * cost.forkjoin_region_overhead
    )


def test_with_overrides_returns_modified_copy():
    cost = CostSpec()
    tweaked = cost.with_overrides(locality_ipc_boost=1.0)
    assert tweaked.locality_ipc_boost == 1.0
    assert cost.locality_ipc_boost != 1.0


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
def test_marenostrum4_preset_shape():
    spec = marenostrum4()
    assert spec.node.cores_per_node == 48
    m = spec.machine(num_nodes=4, ranks_per_node=4)
    assert m.num_ranks == 16


def test_scaled_preset_reduces_cores():
    spec = marenostrum4_scaled(8)
    assert spec.node.cores_per_node == 8
    assert spec.node.sockets_per_node == 2


def test_scaled_preset_rejects_odd_cores():
    with pytest.raises(ValueError):
        marenostrum4_scaled(7)


def test_laptop_preset():
    spec = laptop()
    m = spec.machine(num_nodes=1, ranks_per_node=1)
    assert m.total_cores == 4
    assert not m.placement(0).spans_numa

"""Hypothesis properties of the conservative window protocol.

Drives :mod:`repro.simx.parallel.protocol` — the shipped synchronization
math, with no processes attached — with random partition maps, random
lookaheads, and random message schedules, and checks the two invariants
the partitioned kernel's correctness rests on:

* **Serial equivalence / causality**: the partitioned execution runs the
  exact same events at the exact same timestamps as a single global
  event loop, and no partition ever sees a message behind its clock.
* **Null-window progress**: the protocol terminates (no deadlock) in at
  most one window per executed event, even when partitions start empty
  and only receive work via messages.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simx.parallel import (
    CausalityError,
    LogicalProcess,
    PartitionMap,
    contiguous_map,
    run_conservative,
    safe_horizon,
)

_INF = float("inf")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def _schedules(max_events=12):
    """Random initial event lists: (time, payload-id) per partition."""
    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=0, max_value=10**6),
        ),
        max_size=max_events,
    )


def _fanout(num_partitions, lookahead, depth=2):
    """A deterministic message schedule: each executed event with a
    payload still carrying "hops" emits one message per other partition,
    arriving ``lookahead * k`` later (k >= 1 — always legal)."""

    def on_execute(pid, t, payload):
        hops = payload % (depth + 1)
        if hops == 0:
            return []
        return [
            (dst, lookahead * (1 + (payload + dst) % 3), payload - 1)
            for dst in range(num_partitions)
            if dst != pid
        ]

    return on_execute


def _serial_reference(events_per_pid, lookahead, on_execute):
    """A single global event loop over the same model: the ground truth
    the window protocol must reproduce exactly."""
    heap = []
    seq = 0
    for pid, events in enumerate(events_per_pid):
        for t, payload in events:
            heap.append((float(t), pid, seq, payload))
            seq += 1
    heapq.heapify(heap)
    executed = [[] for _ in events_per_pid]
    while heap:
        t, pid, _s, payload = heapq.heappop(heap)
        executed[pid].append((t, payload))
        if on_execute is not None:
            for dst, delay, msg in on_execute(pid, t, payload):
                heapq.heappush(heap, (t + delay, dst, seq, msg))
                seq += 1
    return executed


# ----------------------------------------------------------------------
# Serial equivalence + causality under random schedules
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    num_partitions=st.integers(min_value=1, max_value=5),
    lookahead=st.floats(min_value=1e-6, max_value=2.0,
                        allow_nan=False, allow_infinity=False),
)
def test_windowed_execution_equals_serial(data, num_partitions, lookahead):
    events = [
        data.draw(_schedules(), label=f"events[{pid}]")
        for pid in range(num_partitions)
    ]
    on_execute = _fanout(num_partitions, lookahead)

    reference = _serial_reference(events, lookahead, on_execute)

    processes = [
        LogicalProcess(pid, events[pid]) for pid in range(num_partitions)
    ]
    windows = run_conservative(processes, lookahead, on_execute)

    total = sum(len(ex) for ex in reference)
    for pid, proc in enumerate(processes):
        # Identical events at identical timestamps, per partition.  The
        # multiset comparison (sorted) tolerates same-time reordering;
        # timestamps themselves must match exactly.
        assert sorted(proc.executed) == sorted(reference[pid]), (
            f"partition {pid} diverged from the serial event loop"
        )
        # The local clock only ever moved forward.
        times = [t for t, _ in proc.executed]
        assert times == sorted(times)
    # Progress bound: every window executes at least the global-min
    # event, so termination needs at most one window per event.
    assert windows <= max(total, 1)


# ----------------------------------------------------------------------
# Null-window progress: empty partitions fed only by messages
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    num_partitions=st.integers(min_value=2, max_value=6),
    lookahead=st.floats(min_value=1e-3, max_value=1.0,
                        allow_nan=False, allow_infinity=False),
    hops=st.integers(min_value=1, max_value=6),
)
def test_no_deadlock_with_empty_partitions(num_partitions, lookahead, hops):
    """Only partition 0 starts with work; everyone else reports
    ``min = inf`` every window until a message lands.  The protocol must
    keep advancing (null-window progress) and terminate."""

    def relay(pid, t, payload):
        if payload == 0:
            return []
        return [((pid + 1) % num_partitions, lookahead, payload - 1)]

    processes = [LogicalProcess(0, [(0.0, hops)])] + [
        LogicalProcess(pid) for pid in range(1, num_partitions)
    ]
    windows = run_conservative(processes, lookahead, relay)
    executed = sum(len(p.executed) for p in processes)
    assert executed == hops + 1
    assert windows <= executed + 1
    # The relay's timestamps are exact lookahead multiples.
    all_events = sorted(
        (t, p.pid) for p in processes for t, _ in p.executed
    )
    assert all_events[0][0] == 0.0
    assert all_events[-1][0] == pytest.approx(hops * lookahead)


# ----------------------------------------------------------------------
# Direct invariants of the pieces
# ----------------------------------------------------------------------
def test_safe_horizon_terminates_on_all_empty():
    assert safe_horizon([_INF, _INF], 0.5) is None
    assert safe_horizon([1.0, _INF], 0.5) == 1.5


def test_ingest_behind_clock_raises():
    p = LogicalProcess(0, [(1.0, 1), (2.0, 2)])
    p.run_window(1.5)
    assert p.clock == 1.0
    with pytest.raises(CausalityError):
        p.ingest(0.5, 99)


def test_nonpositive_lookahead_rejected():
    with pytest.raises(ValueError):
        run_conservative([LogicalProcess(0)], 0.0)


# ----------------------------------------------------------------------
# Partition maps: every rank owned exactly once, ids dense
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    num_ranks=st.integers(min_value=1, max_value=64),
    num_workers=st.integers(min_value=1, max_value=16),
)
def test_contiguous_map_partitions_ranks(num_ranks, num_workers):
    pmap = contiguous_map(num_ranks, num_workers)
    assert pmap.num_workers == min(num_workers, num_ranks)
    seen = []
    for wid in range(pmap.num_workers):
        local = pmap.local_ranks(wid)
        assert local, f"worker {wid} owns no ranks"
        assert all(pmap.owner_of(r) == wid for r in local)
        # Contiguity: each worker owns one unbroken rank range.
        assert local == list(range(local[0], local[-1] + 1))
        seen += local
    assert sorted(seen) == list(range(num_ranks))


def test_partition_map_rejects_sparse_worker_ids():
    with pytest.raises(ValueError):
        PartitionMap([0, 2])  # worker 1 missing
    with pytest.raises(ValueError):
        PartitionMap([])

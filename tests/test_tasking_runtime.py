"""Unit tests for the OmpSs-2-like tasking runtime."""

import pytest

from repro.machine import CostSpec
from repro.simx import Environment
from repro.tasking import (
    AccessMode,
    DependencyTracker,
    ForkJoinTeam,
    RankRuntime,
    Region,
    Task,
    TaskState,
    normalize_accesses,
)

FREE = CostSpec(
    task_spawn_overhead=0.0,
    task_dispatch_overhead=0.0,
    forkjoin_region_overhead=0.0,
    noise_amplitude=0.0,
    noise_spike_rate=0.0,
)


def make_runtime(num_cores=2, scheduler="locality", cost_spec=FREE):
    env = Environment()
    rt = RankRuntime(
        env, num_cores=num_cores, cost_spec=cost_spec, scheduler=scheduler
    )
    return env, rt


def run_main(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc


# ----------------------------------------------------------------------
# Task object
# ----------------------------------------------------------------------
def test_task_rejects_negative_cost():
    env = Environment()
    with pytest.raises(ValueError):
        Task(env, "t", cost=-1.0)


def test_task_rejects_sublinear_locality_factor():
    env = Environment()
    with pytest.raises(ValueError):
        Task(env, "t", locality_factor=0.5)


def test_normalize_accesses_modes():
    acc = normalize_accesses(ins=["a"], outs=["b"], inouts=["c"])
    assert acc == (
        (AccessMode.IN, "a"),
        (AccessMode.OUT, "b"),
        (AccessMode.INOUT, "c"),
    )


# ----------------------------------------------------------------------
# Dependency tracker
# ----------------------------------------------------------------------
def dep_task(env, ins=(), outs=(), inouts=()):
    return Task(env, "t", accesses=normalize_accesses(ins, outs, inouts))


def test_reader_depends_on_last_writer():
    env = Environment()
    tracker = DependencyTracker()
    writer = dep_task(env, outs=["x"])
    reader = dep_task(env, ins=["x"])
    tracker.register(writer)
    tracker.register(reader)
    assert reader.npred == 1
    assert reader in writer.successors


def test_parallel_readers_do_not_depend_on_each_other():
    env = Environment()
    tracker = DependencyTracker()
    writer = dep_task(env, outs=["x"])
    r1 = dep_task(env, ins=["x"])
    r2 = dep_task(env, ins=["x"])
    for t in (writer, r1, r2):
        tracker.register(t)
    assert r1.npred == 1 and r2.npred == 1
    assert r1 not in r2.successors and r2 not in r1.successors


def test_writer_after_readers_waits_for_all():
    env = Environment()
    tracker = DependencyTracker()
    w1 = dep_task(env, outs=["x"])
    r1 = dep_task(env, ins=["x"])
    r2 = dep_task(env, ins=["x"])
    w2 = dep_task(env, outs=["x"])
    for t in (w1, r1, r2, w2):
        tracker.register(t)
    assert w2.npred == 3  # both readers + antidependence on w1


def test_independent_handles_independent_tasks():
    env = Environment()
    tracker = DependencyTracker()
    a = dep_task(env, outs=["x"])
    b = dep_task(env, outs=["y"])
    tracker.register(a)
    tracker.register(b)
    assert b.npred == 0


def test_multidep_union_of_handles():
    env = Environment()
    tracker = DependencyTracker()
    w1 = dep_task(env, outs=["x"])
    w2 = dep_task(env, outs=["y"])
    consumer = dep_task(env, ins=["x", "y"])
    for t in (w1, w2, consumer):
        tracker.register(t)
    assert consumer.npred == 2


def test_region_overlap_creates_dependency():
    env = Environment()
    tracker = DependencyTracker()
    w = dep_task(env, outs=[Region("buf", 0, 100)])
    r = dep_task(env, ins=[Region("buf", 50, 150)])
    tracker.register(w)
    tracker.register(r)
    assert r.npred == 1


def test_region_disjoint_no_dependency():
    env = Environment()
    tracker = DependencyTracker()
    w = dep_task(env, outs=[Region("buf", 0, 100)])
    r = dep_task(env, ins=[Region("buf", 100, 200)])
    tracker.register(w)
    tracker.register(r)
    assert r.npred == 0


def test_self_dependency_excluded():
    env = Environment()
    tracker = DependencyTracker()
    t = dep_task(env, ins=["x"], outs=["x"])
    tracker.register(t)
    assert t.npred == 0


# ----------------------------------------------------------------------
# Runtime execution
# ----------------------------------------------------------------------
def test_single_task_executes_and_charges_cost():
    env, rt = make_runtime(num_cores=1)
    ran = []

    def main():
        yield from rt.spawn("t", cost=2.0, body=lambda: ran.append(env.now))
        yield from rt.taskwait()

    run_main(env, main())
    assert rt.stats.tasks_executed == 1
    assert env.now == pytest.approx(2.0)
    assert ran == [2.0]


def test_independent_tasks_run_in_parallel():
    env, rt = make_runtime(num_cores=4)

    def main():
        for i in range(4):
            yield from rt.spawn(f"t{i}", cost=1.0)
        yield from rt.taskwait()

    run_main(env, main())
    # 4 tasks x 1s on 4 cores (3 workers + helping main) => ~1s.
    assert env.now == pytest.approx(1.0)


def test_dependent_tasks_serialize():
    env, rt = make_runtime(num_cores=4)
    order = []

    def main():
        yield from rt.spawn("w", cost=1.0, outs=["x"],
                            body=lambda: order.append("w"))
        yield from rt.spawn("r", cost=1.0, ins=["x"],
                            body=lambda: order.append("r"))
        yield from rt.taskwait()

    run_main(env, main())
    assert order == ["w", "r"]
    assert env.now == pytest.approx(2.0)


def test_diamond_dependency_graph():
    env, rt = make_runtime(num_cores=4)
    order = []

    def main():
        yield from rt.spawn("a", cost=1.0, outs=["x"],
                            body=lambda: order.append("a"))
        yield from rt.spawn("b", cost=1.0, ins=["x"], outs=["y"],
                            body=lambda: order.append("b"))
        yield from rt.spawn("c", cost=1.0, ins=["x"], outs=["z"],
                            body=lambda: order.append("c"))
        yield from rt.spawn("d", cost=1.0, ins=["y", "z"],
                            body=lambda: order.append("d"))
        yield from rt.taskwait()

    run_main(env, main())
    assert order[0] == "a" and order[-1] == "d"
    assert set(order[1:3]) == {"b", "c"}
    # b and c run in parallel: total 3s, not 4s.
    assert env.now == pytest.approx(3.0)


def test_main_thread_helps_during_taskwait():
    env, rt = make_runtime(num_cores=1)

    def main():
        for i in range(3):
            yield from rt.spawn(f"t{i}", cost=1.0)
        yield from rt.taskwait()

    run_main(env, main())
    # Single core: main executes all three inline.
    assert env.now == pytest.approx(3.0)
    assert rt.stats.tasks_executed == 3


def test_work_stealing_balances_queues():
    env, rt = make_runtime(num_cores=2)

    def main():
        # All four tasks land round-robin; stealing keeps both cores busy.
        for i in range(4):
            yield from rt.spawn(f"t{i}", cost=1.0)
        yield from rt.taskwait()

    run_main(env, main())
    assert env.now == pytest.approx(2.0)


def test_taskwait_with_no_tasks_returns_immediately():
    env, rt = make_runtime()

    def main():
        yield from rt.taskwait()

    run_main(env, main())
    assert env.now == 0.0


def test_sequential_taskwaits():
    env, rt = make_runtime(num_cores=2)

    def main():
        yield from rt.spawn("a", cost=1.0)
        yield from rt.taskwait()
        first = env.now
        yield from rt.spawn("b", cost=1.0)
        yield from rt.taskwait()
        assert env.now == pytest.approx(first + 1.0)

    run_main(env, main())


def test_pick_waiter_prunes_stale_entries():
    """Triggered (stale) wakeup events left by the drain/taskwait-with-deps
    paths must be pruned during the scan, not accumulate or get returned."""
    env, rt = make_runtime(num_cores=4)
    stale = {}
    for core in (1, 2):
        ev = env.event()
        ev.succeed(None)  # already triggered: stale
        stale[core] = ev
        rt._waiters[core] = ev
    live = env.event()
    rt._waiters[3] = live

    picked = rt._pick_waiter(None)
    assert picked is live
    assert rt._waiters == {}

    # A stale entry on the preferred slot is also discarded, falling
    # through to the FIFO scan.
    ev = env.event()
    ev.succeed(None)
    rt._waiters[2] = ev
    live2 = env.event()
    rt._waiters[1] = live2
    assert rt._pick_waiter(2) is live2
    assert rt._waiters == {}


def test_waiter_table_bounded_under_taskwait_stress():
    """A taskwait-heavy run must keep the waiter table within the core
    count at all times (the pre-fix list grew with every blocked wait)."""
    env, rt = make_runtime(num_cores=4)
    high_water = [0]

    def probe():
        high_water[0] = max(high_water[0], len(rt._waiters))

    def main():
        for i in range(30):
            yield from rt.spawn(f"w{i}", cost=0.5, outs=[("h", i % 3)])
            yield from rt.spawn(f"p{i}", cost=0.0, body=probe,
                                ins=[("h", i % 3)])
            if i % 3 == 0:
                yield from rt.taskwait_with_deps(ins=[("h", i % 3)])
            if i % 5 == 0:
                yield from rt.taskwait()
            high_water[0] = max(high_water[0], len(rt._waiters))
        yield from rt.taskwait()

    run_main(env, main())
    assert 0 < high_water[0] <= rt.num_cores
    assert len(rt._waiters) <= rt.num_cores


def test_generator_body_can_wait_on_events():
    env, rt = make_runtime(num_cores=2)
    seen = []

    def body(ctx):
        yield ctx.env.timeout(5.0)
        seen.append(ctx.env.now)

    def main():
        yield from rt.spawn("g", cost=1.0, body=body)
        yield from rt.taskwait()

    run_main(env, main())
    assert seen == [6.0]


def test_locality_scheduler_applies_ipc_boost():
    env, rt = make_runtime(num_cores=1)

    def main():
        yield from rt.spawn("a", cost=1.0, outs=["blk"], affinity="blk",
                            locality_factor=2.0)
        yield from rt.spawn("b", cost=1.0, ins=["blk"], affinity="blk",
                            locality_factor=2.0)
        yield from rt.taskwait()

    run_main(env, main())
    # Second task hits locality: 1.0 + 1.0/2 = 1.5.
    assert env.now == pytest.approx(1.5)
    assert rt.stats.locality_hits == 1


def test_fifo_scheduler_no_front_push():
    env, rt = make_runtime(num_cores=1, scheduler="fifo")
    order = []

    def main():
        yield from rt.spawn("a", cost=1.0, outs=["x"],
                            body=lambda: order.append("a"))
        yield from rt.spawn("c", cost=1.0, body=lambda: order.append("c"))
        yield from rt.spawn("b", cost=1.0, ins=["x"],
                            body=lambda: order.append("b"))
        yield from rt.taskwait()

    run_main(env, main())
    # FIFO: after `a` completes, `c` (queued earlier) runs before `b`.
    assert order == ["a", "c", "b"]


def test_locality_scheduler_runs_successor_immediately():
    env, rt = make_runtime(num_cores=1, scheduler="locality")
    order = []

    def main():
        yield from rt.spawn("a", cost=1.0, outs=["x"],
                            body=lambda: order.append("a"))
        yield from rt.spawn("c", cost=1.0, body=lambda: order.append("c"))
        yield from rt.spawn("b", cost=1.0, ins=["x"],
                            body=lambda: order.append("b"))
        yield from rt.taskwait()

    run_main(env, main())
    # Immediate-successor policy: `b` jumps the queue after `a`.
    assert order == ["a", "b", "c"]


def test_unknown_scheduler_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        RankRuntime(env, num_cores=1, scheduler="magic")


def test_zero_cores_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        RankRuntime(env, num_cores=0)


def test_spawn_charges_overhead():
    env = Environment()
    spec = CostSpec(task_spawn_overhead=0.5, task_dispatch_overhead=0.0,
                    noise_amplitude=0.0, noise_spike_rate=0.0)
    rt = RankRuntime(env, num_cores=1, cost_spec=spec)

    def main():
        yield from rt.spawn("t", cost=0.0)
        assert env.now == pytest.approx(0.5)
        yield from rt.taskwait()

    run_main(env, main())


def test_dispatch_overhead_charged_per_task():
    env = Environment()
    spec = CostSpec(task_spawn_overhead=0.0, task_dispatch_overhead=0.25,
                    noise_amplitude=0.0, noise_spike_rate=0.0)
    rt = RankRuntime(env, num_cores=1, cost_spec=spec)

    def main():
        yield from rt.spawn("a", cost=1.0)
        yield from rt.spawn("b", cost=1.0)
        yield from rt.taskwait()

    run_main(env, main())
    assert env.now == pytest.approx(2.5)


def test_per_phase_time_accumulates():
    env, rt = make_runtime(num_cores=1)

    def main():
        yield from rt.spawn("s1", cost=1.0, phase="stencil")
        yield from rt.spawn("s2", cost=2.0, phase="stencil")
        yield from rt.spawn("p", cost=0.5, phase="pack")
        yield from rt.taskwait()

    run_main(env, main())
    assert rt.stats.per_phase_time["stencil"] == pytest.approx(3.0)
    assert rt.stats.per_phase_time["pack"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# taskwait_with_deps
# ----------------------------------------------------------------------
def test_taskwait_with_deps_waits_only_for_named_data():
    env, rt = make_runtime(num_cores=2)
    checkpoints = {}

    def main():
        yield from rt.spawn("fast", cost=1.0, outs=["a"])
        yield from rt.spawn("slow", cost=10.0, outs=["b"])
        yield from rt.taskwait_with_deps(ins=["a"])
        checkpoints["after-deps"] = env.now
        yield from rt.taskwait()
        checkpoints["after-full"] = env.now

    run_main(env, main())
    # The marker was satisfied at t=1 ("fast" done), but the main thread
    # helps execute while blocked — Nanos6-style — and picked up "slow"
    # from its queue, so it observes the satisfaction at t=10.
    assert checkpoints["after-deps"] == pytest.approx(10.0)
    assert checkpoints["after-full"] == pytest.approx(10.0)


def test_taskwait_with_deps_on_untouched_data_is_immediate():
    env, rt = make_runtime()

    def main():
        yield from rt.taskwait_with_deps(ins=["never-written"])

    run_main(env, main())
    assert env.now == 0.0


def test_taskwait_with_deps_chain():
    env, rt = make_runtime(num_cores=2)

    def main():
        yield from rt.spawn("w1", cost=1.0, outs=["x"])
        yield from rt.spawn("w2", cost=1.0, ins=["x"], outs=["y"])
        yield from rt.taskwait_with_deps(ins=["y"])
        assert env.now == pytest.approx(2.0)

    run_main(env, main())


# ----------------------------------------------------------------------
# Fork-join layer
# ----------------------------------------------------------------------
def test_static_chunks_even_division():
    env, rt = make_runtime(num_cores=4)
    team = ForkJoinTeam(rt)
    assert team.static_chunks(8) == [(0, 2), (2, 4), (4, 6), (6, 8)]


def test_static_chunks_remainder_spread():
    env, rt = make_runtime(num_cores=4)
    team = ForkJoinTeam(rt)
    assert team.static_chunks(6) == [(0, 2), (2, 4), (4, 5), (5, 6)]


def test_static_chunks_fewer_items_than_threads():
    env, rt = make_runtime(num_cores=4)
    team = ForkJoinTeam(rt)
    chunks = team.static_chunks(2)
    assert chunks == [(0, 1), (1, 2), (2, 2), (2, 2)]


def test_parallel_for_distributes_work():
    env, rt = make_runtime(num_cores=4)
    team = ForkJoinTeam(rt)

    def main():
        yield from team.parallel_for([1.0] * 8, label="work")

    run_main(env, main())
    # 8 x 1s over 4 threads = 2s.
    assert env.now == pytest.approx(2.0)


def test_parallel_for_static_imbalance():
    env, rt = make_runtime(num_cores=2)
    team = ForkJoinTeam(rt)

    def main():
        # Static schedule puts both expensive items on thread 0.
        yield from team.parallel_for([5.0, 5.0, 1.0, 1.0], label="work")

    run_main(env, main())
    assert env.now == pytest.approx(10.0)


def test_parallel_for_runs_bodies():
    env, rt = make_runtime(num_cores=2)
    team = ForkJoinTeam(rt)
    hits = []

    def main():
        bodies = [lambda i=i: hits.append(i) for i in range(5)]
        yield from team.parallel_for([0.1] * 5, bodies=bodies, label="w")

    run_main(env, main())
    assert sorted(hits) == [0, 1, 2, 3, 4]


def test_parallel_for_charges_region_overhead():
    env = Environment()
    spec = CostSpec(
        task_spawn_overhead=0.0,
        task_dispatch_overhead=0.0,
        forkjoin_region_overhead=1.0,
        noise_amplitude=0.0,
        noise_spike_rate=0.0,
    )
    rt = RankRuntime(env, num_cores=2, cost_spec=spec)
    team = ForkJoinTeam(rt)

    def main():
        yield from team.parallel_for([0.0, 0.0], label="w")

    run_main(env, main())
    # log2(2) = 1 round of 1s, split half before, half after.
    assert env.now == pytest.approx(1.0)


def test_parallel_for_is_barrier():
    env, rt = make_runtime(num_cores=2)
    team = ForkJoinTeam(rt)
    order = []

    def main():
        yield from team.parallel_for(
            [1.0, 2.0],
            bodies=[lambda: order.append("i0"), lambda: order.append("i1")],
        )
        order.append("after")

    run_main(env, main())
    assert order[-1] == "after"
    assert set(order[:2]) == {"i0", "i1"}

"""Tests for the tracing module: events, analyses, Paraver export."""

import pytest

from repro.trace import (
    TraceEvent,
    Tracer,
    core_utilization,
    legend,
    mpi_time_by_call,
    overlap_fraction,
    phase_time,
    render_ascii,
    task_time_by_phase,
    unpack_follows_gap_fraction,
    write_pcf,
    write_prv,
)


def make_tracer():
    t = Tracer()
    # rank 0, core 0: stencil [0,2], pack [2,3], idle [3,5], unpack [5,6]
    t.task_event(0, 0, "stencil b1", "stencil", 0.0, 2.0)
    t.task_event(0, 0, "pack b1", "pack", 2.0, 3.0)
    t.task_event(0, 0, "unpack b1", "unpack", 5.0, 6.0)
    # rank 0, core 1: intra [1,4]
    t.task_event(0, 1, "intra b2", "intra", 1.0, 4.0)
    # MPI calls on rank 0
    t.mpi_event(0, "Isend", 2.9, 3.0)
    t.mpi_event(0, "Waitany", 3.0, 5.0)
    # phases
    t.phase_begin(0, "refine", 6.0)
    t.phase_end(0, "refine", 8.0)
    return t


def test_event_duration():
    e = TraceEvent(0, 0, "task", "x", "stencil", 1.0, 3.5)
    assert e.duration == 2.5


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    t.task_event(0, 0, "x", "stencil", 0, 1)
    t.mpi_event(0, "Isend", 0, 1)
    t.phase_begin(0, "p", 0)
    t.phase_end(0, "p", 1)
    assert t.events == []


def test_by_kind_and_for_rank():
    t = make_tracer()
    assert len(t.by_kind("task")) == 4
    assert len(t.by_kind("mpi")) == 2
    assert len(t.for_rank(0)) == 7
    assert t.for_rank(3) == []


def test_phase_time():
    t = make_tracer()
    assert phase_time(t, "refine") == pytest.approx(2.0)
    assert phase_time(t, "absent") == 0.0


def test_phase_end_without_begin_ignored():
    t = Tracer()
    t.phase_end(0, "never-began", 1.0)
    assert t.events == []


def test_mpi_time_by_call():
    t = make_tracer()
    totals = mpi_time_by_call(t)
    assert totals["Waitany"] == pytest.approx(2.0)
    assert totals["Isend"] == pytest.approx(0.1)


def test_task_time_by_phase():
    t = make_tracer()
    totals = task_time_by_phase(t)
    assert totals["stencil"] == pytest.approx(2.0)
    assert totals["intra"] == pytest.approx(3.0)


def test_core_utilization_busy_and_gaps():
    t = make_tracer()
    report = core_utilization(t, 0, 2, 0.0, 6.0)
    # core 0 busy 4s of 6, core 1 busy 3s of 6 => 7/12.
    assert report.busy_fraction == pytest.approx(7 / 12)
    assert report.max_gap == pytest.approx(2.0)  # core 1 idle [4,6]


def test_core_utilization_rejects_empty_window():
    t = make_tracer()
    with pytest.raises(ValueError):
        core_utilization(t, 0, 2, 5.0, 5.0)


def test_overlap_fraction():
    t = make_tracer()
    # intra [1,4] vs stencil [0,2]: overlap [1,2] = 1 of intra's 3.
    assert overlap_fraction(t, 0, "intra", "stencil") == pytest.approx(1 / 3)
    assert overlap_fraction(t, 0, "stencil", "intra") == pytest.approx(1 / 2)
    assert overlap_fraction(t, 0, "absent", "stencil") == 0.0


def test_unpack_follows_gap_fraction():
    t = make_tracer()
    # core 0 has one gap (3->5) followed by an unpack task.
    assert unpack_follows_gap_fraction(t, 0, gap_min=0.5) == 1.0


def test_write_prv_and_pcf(tmp_path):
    t = make_tracer()
    prv = write_prv(t, tmp_path / "trace.prv", num_ranks=1, duration=8.0)
    pcf = write_pcf(tmp_path / "trace.pcf")
    lines = (tmp_path / "trace.prv").read_text().strip().splitlines()
    assert lines[0].startswith("#Paraver")
    # One record per task/mpi event.
    assert len(lines) == 1 + 6
    # Records are colon-separated with 8 fields.
    assert all(len(line.split(":")) == 8 for line in lines[1:])
    pcf_text = (tmp_path / "trace.pcf").read_text()
    assert "STATES" in pcf_text
    assert "task:stencil" in pcf_text


def test_render_ascii_paints_glyphs():
    t = make_tracer()
    art = render_ascii(t, [(0, 0), (0, 1)], 0.0, 6.0, width=12)
    lines = art.splitlines()
    assert len(lines) == 2
    assert "s" in lines[0]  # stencil glyph
    assert "u" in lines[0]  # unpack glyph
    assert "i" in lines[1]  # intra glyph
    assert "." in lines[1]  # idle
    assert "legend" in legend()


def test_render_ascii_rejects_empty_window():
    t = make_tracer()
    with pytest.raises(ValueError):
        render_ascii(t, [(0, 0)], 1.0, 1.0)

"""Tests for load balancing and communication planning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr import (
    AmrConfig,
    MeshStructure,
    MovingObject,
    apply_plan,
    build_all_rank_plans,
    build_global_transfers,
    build_rank_plan,
    direction_tag,
    group_nbytes,
    max_imbalance,
    message_groups,
    plan_moves,
    plan_partition,
    plan_refinement,
    sfc_order,
    sphere,
)
from repro.amr.comm_plan import DIRECTION_TAG_STRIDE


def config(**kw):
    defaults = dict(
        npx=2, npy=2, npz=2, init_x=1, init_y=1, init_z=1,
        nx=4, ny=4, nz=4, num_vars=2, max_refine_level=2,
    )
    defaults.update(kw)
    return AmrConfig(**defaults)


def refined_structure():
    s = MeshStructure(config())
    obj = [MovingObject(sphere(center=(0.25, 0.25, 0.25), radius=0.3))]
    apply_plan(s, plan_refinement(s, obj))
    return s


# ----------------------------------------------------------------------
# Balance
# ----------------------------------------------------------------------
def test_sfc_order_is_total_and_stable():
    s = refined_structure()
    order = sfc_order(s)
    assert len(order) == s.num_blocks()
    assert order == sfc_order(s)  # deterministic


def test_partition_counts_within_one():
    s = refined_structure()
    target = plan_partition(s, 8)
    counts = {}
    for rank in target.values():
        counts[rank] = counts.get(rank, 0) + 1
    assert max(counts.values()) - min(counts.values()) <= 1
    assert sum(counts.values()) == s.num_blocks()


def test_partition_chunks_are_contiguous_in_sfc_order():
    s = refined_structure()
    target = plan_partition(s, 4)
    ranks_in_order = [target[b] for b in sfc_order(s)]
    # Rank ids must be non-decreasing along the curve.
    assert ranks_in_order == sorted(ranks_in_order)


def test_plan_moves_diff_only():
    s = refined_structure()
    target = {bid: s.owner[bid] for bid in s.active}
    assert plan_moves(s, target).is_empty
    some = sorted(s.active)[0]
    target[some] = (s.owner[some] + 1) % 8
    mp = plan_moves(s, target)
    assert len(mp) == 1
    assert mp.moves[some] == (s.owner[some], target[some])


def test_moveplan_incoming_outgoing_views():
    s = refined_structure()
    target = plan_partition(s, 8)
    mp = plan_moves(s, target)
    for rank in range(8):
        for bid, dst in mp.outgoing(rank):
            assert mp.moves[bid] == (rank, dst)
        for bid, src in mp.incoming(rank):
            assert mp.moves[bid] == (src, rank)


def test_max_imbalance_after_partition():
    s = refined_structure()
    target = plan_partition(s, 8)
    for bid, rank in target.items():
        s.set_owner(bid, rank)
    assert max_imbalance(s) < 1.2


# ----------------------------------------------------------------------
# Communication plan
# ----------------------------------------------------------------------
def test_global_transfers_cover_every_interior_face():
    cfg = config()
    s = MeshStructure(cfg)
    transfers = build_global_transfers(s, cfg, cfg.num_vars)
    # 2x2x2 root mesh: 4 interior faces per axis, each with 2 directed
    # transfers.
    for axis in (0, 1, 2):
        assert len(transfers[axis]) == 8


def test_transfers_symmetric_src_dst():
    cfg = config()
    s = MeshStructure(cfg)
    transfers = build_global_transfers(s, cfg, cfg.num_vars)
    for axis in (0, 1, 2):
        pairs = {(t.src, t.dst) for t in transfers[axis]}
        assert all((dst, src) in pairs for src, dst in pairs)


def test_rank_plan_consistent_with_all_rank_plans():
    cfg = config()
    s = refined_structure()
    all_plans = build_all_rank_plans(s, cfg, cfg.num_vars)
    for rank in (0, 3, 7):
        solo = build_rank_plan(s, cfg, cfg.num_vars, rank)
        for axis in (0, 1, 2):
            assert solo[axis].local == all_plans[rank][axis].local
            assert solo[axis].sends == all_plans[rank][axis].sends
            assert solo[axis].recvs == all_plans[rank][axis].recvs


def test_sender_receiver_see_matching_streams():
    """rank A's sends to B equal B's recvs from A, element for element —
    the property that makes implicit tag agreement work."""
    cfg = config()
    s = refined_structure()
    plans = build_all_rank_plans(s, cfg, cfg.num_vars)
    for a in range(8):
        for axis in (0, 1, 2):
            for b, sends in plans[a][axis].sends.items():
                recvs = plans[b][axis].recvs[a]
                assert sends == recvs


def test_cross_level_transfers_are_quarter_sized():
    cfg = config()
    s = refined_structure()
    transfers = build_global_transfers(s, cfg, cfg.num_vars)
    full = cfg.face_bytes(0, cfg.num_vars, cross_level=False)
    quarter = cfg.face_bytes(0, cfg.num_vars, cross_level=True)
    assert quarter * 4 == full
    rels = {t.rel for ax in transfers.values() for t in ax}
    assert rels == {"same", "finer", "coarser"}
    for ax in transfers.values():
        for t in ax:
            expected = quarter if t.rel != "same" else full
            assert t.nbytes == expected


def test_finer_transfer_has_four_siblings_per_coarse_face():
    cfg = config()
    s = refined_structure()
    transfers = build_global_transfers(s, cfg, cfg.num_vars)
    finer = [t for t in transfers[0] if t.rel == "finer"]
    by_dst_side = {}
    for t in finer:
        by_dst_side.setdefault((t.dst, t.side), set()).add(t.quadrant)
    for quadrants in by_dst_side.values():
        assert quadrants == {(0, 0), (0, 1), (1, 0), (1, 1)}


# ----------------------------------------------------------------------
# Message grouping
# ----------------------------------------------------------------------
def _fake_transfers(n):
    cfg = config()
    s = MeshStructure(cfg)
    transfers = build_global_transfers(s, cfg, cfg.num_vars)[0]
    assert len(transfers) >= n
    return transfers[:n]


def test_default_grouping_single_message():
    ts = _fake_transfers(6)
    groups = message_groups(ts, send_faces=False, max_comm_tasks=0)
    assert len(groups) == 1
    assert groups[0] == ts


def test_send_faces_one_message_per_face():
    ts = _fake_transfers(6)
    groups = message_groups(ts, send_faces=True, max_comm_tasks=0)
    assert len(groups) == 6


def test_max_comm_tasks_caps_messages():
    ts = _fake_transfers(6)
    groups = message_groups(ts, send_faces=True, max_comm_tasks=4)
    assert len(groups) == 4
    assert sum(len(g) for g in groups) == 6


def test_max_comm_tasks_larger_than_faces():
    ts = _fake_transfers(3)
    groups = message_groups(ts, send_faces=True, max_comm_tasks=10)
    assert len(groups) == 3


def test_empty_transfers_no_groups():
    assert message_groups([], send_faces=True, max_comm_tasks=2) == []


def test_group_nbytes_sums():
    ts = _fake_transfers(4)
    assert group_nbytes(ts) == sum(t.nbytes for t in ts)


def test_direction_tags_disjoint_per_axis():
    assert direction_tag(0, 5) < DIRECTION_TAG_STRIDE
    assert direction_tag(1, 0) == DIRECTION_TAG_STRIDE
    assert direction_tag(2, 7) == 2 * DIRECTION_TAG_STRIDE + 7


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    cap=st.integers(min_value=0, max_value=12),
    send_faces=st.booleans(),
)
def test_property_grouping_partitions_transfers(n, cap, send_faces):
    """Grouping never loses, duplicates, or reorders transfers."""
    ts = list(range(n))  # any hashables work
    groups = message_groups(ts, send_faces=send_faces, max_comm_tasks=cap)
    flat = [t for g in groups for t in g]
    assert sorted(flat) == ts
    if not send_faces:
        assert len(groups) == 1
    elif cap > 0:
        assert len(groups) <= max(cap, 1)

"""Partitioned-kernel equivalence: ``pdes_workers > 1`` must reproduce
the serial event kernel *byte for byte*.

The conservative window protocol promises identical delivery order and
timestamps, so the whole serialized :class:`~repro.core.RunResult` —
checksums, simulated clock, per-rank runtime stats, communication
volumes — is compared as canonical JSON, not field by field with
tolerances.  Any drift (a reordered tie, a float that rounded
differently, a stat merged in the wrong order) fails loudly.
"""

import json
from dataclasses import replace

import pytest

from repro import AmrConfig, sphere
from repro.core import RunSpec
from repro.core.driver import run_simulation
from repro.verify import GoldenStore, default_golden_specs, fuzz_sweep

VARIANTS = ("mpi_only", "fork_join", "tampi_dataflow")
SCHEDULERS = ("fifo", "locality")


def _workload_base(name):
    if name == "quick":
        # The golden-style one-timestep config: cheap, still exercises
        # refinement, exchange, checksum collectives.
        return dict(
            nx=4, ny=4, nz=4, num_vars=2,
            num_tsteps=1, stages_per_ts=3, refine_freq=1, checksum_freq=3,
            max_refine_level=1,
            objects=(sphere(center=(0.4, 0.45, 0.5), radius=0.2,
                            move=(0.05, 0.0, 0.0)),),
        )
    # refine_heavy: a fast-moving object refined every timestep two
    # levels deep — maximum split/consolidate traffic across the
    # partition boundary.
    return dict(
        nx=4, ny=4, nz=4, num_vars=2,
        num_tsteps=3, stages_per_ts=2, refine_freq=1, checksum_freq=2,
        max_refine_level=2,
        objects=(sphere(center=(0.25, 0.4, 0.5), radius=0.14,
                        move=(0.18, 0.05, 0.0)),),
    )


def _spec(workload, variant, scheduler):
    base = _workload_base(workload)
    if variant == "mpi_only":
        cfg = AmrConfig(npx=2, npy=2, npz=1, init_x=1, init_y=1, init_z=2,
                        **base)
        rpn = 4
    else:
        cfg = AmrConfig(npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
                        **base)
        rpn = 2
    return RunSpec(config=cfg, machine="laptop", variant=variant,
                   num_nodes=1, ranks_per_node=rpn, scheduler=scheduler)


def _canon(result):
    return json.dumps(result.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# The core matrix: variants x schedulers x workloads x worker counts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", ["quick", "refine_heavy"])
@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("variant", VARIANTS)
def test_partitioned_matches_serial(workload, variant, scheduler):
    spec = _spec(workload, variant, scheduler)
    serial = _canon(run_simulation(spec))
    for workers in (2, 4):
        part = _canon(run_simulation(replace(spec, pdes_workers=workers)))
        assert part == serial, (
            f"{variant}/{scheduler}/{workload}: pdes_workers={workers} "
            f"diverged from the serial kernel"
        )


# ----------------------------------------------------------------------
# Multi-node machines: both partition policies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["node", "contiguous"])
def test_partition_policies_match_serial_multinode(policy):
    base = _workload_base("quick")
    cfg = AmrConfig(npx=2, npy=2, npz=2, init_x=1, init_y=1, init_z=1,
                    **base)
    spec = RunSpec(config=cfg, machine="marenostrum4", variant="mpi_only",
                   num_nodes=4, ranks_per_node=2, scheduler="locality")
    serial = _canon(run_simulation(spec))
    part = _canon(run_simulation(
        replace(spec, pdes_workers=4, pdes_partition=policy)
    ))
    assert part == serial, f"partition policy {policy!r} diverged"


# ----------------------------------------------------------------------
# Committed goldens replay partitioned
# ----------------------------------------------------------------------
def test_goldens_replay_partitioned():
    """``pdes_workers=4`` reproduces every committed golden exactly.

    The golden's spec key is computed from the *base* (serial) spec —
    the golden asserts behaviour, and a partitioned run claims to have
    identical behaviour.
    """
    store = GoldenStore("goldens")
    specs = default_golden_specs()
    assert set(specs) <= set(store.names()), "committed goldens missing"
    for name, spec in specs.items():
        result = run_simulation(replace(spec, pdes_workers=4))
        store.check(name, spec, result)  # raises GoldenMismatchError


# ----------------------------------------------------------------------
# Schedule fuzzing under partitioned execution
# ----------------------------------------------------------------------
def test_fuzz_sweep_partitioned():
    """Five fuzz seeds run partitioned keep every schedule invariant."""
    spec = replace(
        _spec("quick", "tampi_dataflow", "locality"), pdes_workers=2
    )
    report = fuzz_sweep(spec, seeds=5)
    assert report.ok, report.summary()

"""Edge-case tests for the event primitives."""

import pytest

from repro.simx import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    EventAlreadyTriggered,
)


def test_event_trigger_chains_success():
    env = Environment()
    source = env.event()
    sink = env.event()
    source.succeed("payload")
    sink.trigger(source)
    assert sink.triggered and sink.ok
    assert sink.value == "payload"


def test_event_trigger_chains_failure():
    env = Environment()
    source = env.event()
    sink = env.event()
    exc = RuntimeError("boom")
    source.fail(exc)
    source.defused = True
    sink.trigger(source)
    sink.defused = True
    assert sink.triggered and not sink.ok
    assert sink.value is exc
    env.run()


def test_event_trigger_from_untriggered_source_raises():
    """Chaining from a pending source must fail loudly (it used to read
    the _PENDING sentinel as the chained value), naming the offender."""
    from repro.simx import NotTriggeredError

    env = Environment()
    source = env.event()
    sink = env.event()
    with pytest.raises(NotTriggeredError) as excinfo:
        sink.trigger(source)
    assert repr(source) in str(excinfo.value)
    # The sink must be left untouched and still usable.
    assert not sink.triggered
    sink.succeed("later")
    assert sink.value == "later"


def test_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_fail_after_succeed_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(EventAlreadyTriggered):
        ev.fail(RuntimeError("late"))


def test_condition_rejects_foreign_events():
    env_a = Environment()
    env_b = Environment()
    ev_b = env_b.event()
    with pytest.raises(ValueError, match="different environments"):
        AllOf(env_a, [ev_b])


def test_anyof_empty_fires_immediately():
    env = Environment()
    hit = []

    def proc(env):
        yield AnyOf(env, [])
        hit.append(env.now)

    env.process(proc(env))
    env.run()
    assert hit == [0.0]


def test_allof_with_already_processed_events():
    env = Environment()
    results = []

    def early(env, ev):
        yield env.timeout(1)
        ev.succeed("a")

    def late(env, ev):
        yield env.timeout(5)
        result = yield env.all_of([ev, env.timeout(1, value="b")])
        results.append(sorted(result.values()))

    ev = env.event()
    env.process(early(env, ev))
    env.process(late(env, ev))
    env.run()
    assert results == [["a", "b"]]


def test_nested_conditions():
    env = Environment()
    times = []

    def proc(env):
        inner_any = env.any_of([env.timeout(2), env.timeout(9)])
        outer = env.all_of([inner_any, env.timeout(4)])
        yield outer
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [4.0]


def test_event_repr_states():
    env = Environment()
    ev = env.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "ok" in repr(ev)
    bad = env.event()
    bad.fail(ValueError("x"))
    bad.defused = True
    assert "failed" in repr(bad)
    env.run()


def test_timeout_repr():
    env = Environment()
    t = env.timeout(3.5)
    assert "3.5" in repr(t)


def test_process_waits_on_failed_condition_member_once():
    """A failure inside a condition propagates exactly once."""
    env = Environment()
    caught = []

    def failer(env, ev):
        yield env.timeout(1)
        ev.fail(KeyError("k"))

    def waiter(env, ev):
        try:
            yield env.any_of([ev, env.timeout(10)])
        except KeyError:
            caught.append(env.now)

    ev = env.event()
    env.process(failer(env, ev))
    env.process(waiter(env, ev))
    env.run()
    assert caught == [1.0]

"""Tests for the experiment harness: inputs, grid fitting, quick runs."""

import pytest

from repro.bench import (
    build_config,
    factor3,
    fit_grid,
    format_table,
    four_spheres,
    single_sphere,
    weak_root_dims,
)
from repro.bench.experiments import SCALED_RPN, TAMPI_OPTS


# ----------------------------------------------------------------------
# Inputs
# ----------------------------------------------------------------------
def test_single_sphere_enters_from_corner():
    (spec,) = single_sphere(num_tsteps=10)
    assert all(c < 0 for c in spec.center)  # starts outside the mesh
    assert all(m > 0 for m in spec.move)  # moves toward the interior


def test_single_sphere_reaches_interior():
    (spec,) = single_sphere(num_tsteps=10)
    end = [c + 10 * m for c, m in zip(spec.center, spec.move)]
    assert all(0.2 < e < 0.8 for e in end)


def test_four_spheres_cross_without_leaving():
    specs = four_spheres(num_tsteps=20)
    assert len(specs) == 4
    moves_x = sorted(s.move[0] for s in specs)
    assert moves_x[0] < 0 < moves_x[-1]  # two each way
    for s in specs:
        end_x = s.center[0] + 20 * s.move[0]
        assert 0.0 < end_x - s.size[0] and end_x + s.size[0] < 1.0


def test_four_spheres_do_not_collide_midway():
    specs = four_spheres(num_tsteps=20)
    for step in range(21):
        centers = [
            tuple(c + step * m for c, m in zip(s.center, s.move))
            for s in specs
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                d2 = sum(
                    (a - b) ** 2 for a, b in zip(centers[i], centers[j])
                )
                min_d = specs[i].size[0] + specs[j].size[0]
                assert d2 > min_d**2 * 0.9, f"collision at step {step}"


# ----------------------------------------------------------------------
# Grid fitting
# ----------------------------------------------------------------------
def test_factor3_near_cubic():
    assert sorted(factor3(8)) == [2, 2, 2]
    assert sorted(factor3(12)) == [2, 2, 3]
    assert sorted(factor3(7)) == [1, 1, 7]


def test_fit_grid_divides_root():
    grid = fit_grid(16, (8, 4, 4))
    assert grid[0] * grid[1] * grid[2] == 16
    for g, r in zip(grid, (8, 4, 4)):
        assert r % g == 0


def test_fit_grid_prefers_uniform():
    assert sorted(fit_grid(8, (4, 4, 4))) == [2, 2, 2]


def test_fit_grid_impossible_raises():
    with pytest.raises(ValueError):
        fit_grid(5, (4, 4, 4))


def test_weak_root_dims_round_robin():
    assert weak_root_dims((2, 2, 2), 0) == (2, 2, 2)
    assert weak_root_dims((2, 2, 2), 1) == (4, 2, 2)
    assert weak_root_dims((2, 2, 2), 3) == (4, 4, 4)
    assert weak_root_dims((2, 2, 2), 4) == (8, 4, 4)


# ----------------------------------------------------------------------
# build_config
# ----------------------------------------------------------------------
def test_build_config_matches_rank_count():
    cfg = build_config(16, (8, 4, 4), four_spheres(2))
    assert cfg.num_ranks == 16
    assert cfg.root_dims == (8, 4, 4)


def test_build_config_passes_options():
    cfg = build_config(8, (4, 4, 2), (), **TAMPI_OPTS)
    assert cfg.send_faces and cfg.separate_buffers
    assert cfg.max_comm_tasks == 8


def test_scaled_rpn_covers_all_variants():
    assert set(SCALED_RPN) == {"mpi_only", "fork_join", "tampi_dataflow"}


# ----------------------------------------------------------------------
# format_table
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(
        ["a", "bb"], [(1, "x"), (22, "yy")], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_table_empty_rows():
    text = format_table(["h1", "h2"], [])
    assert "h1" in text

"""Property tests for the machine cost model (hypothesis).

The experiments lean on the cost model's *shape*, not its absolute
numbers — so the monotonicity laws must hold everywhere, not just at the
calibrated defaults: more bytes or less bandwidth can never make a
modeled transfer faster, more cells can never make a stencil cheaper,
noise and fault injection can only stretch a charge, never shrink it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, noise_plan, straggler_plan
from repro.machine import CostSpec, NetworkSpec
from repro.machine.costmodel import NoiseModel

sizes = st.integers(min_value=0, max_value=1 << 30)
cells = st.integers(min_value=1, max_value=1 << 20)
bandwidths = st.floats(min_value=1e6, max_value=1e12,
                       allow_nan=False, allow_infinity=False)
seconds = st.floats(min_value=1e-9, max_value=10.0,
                    allow_nan=False, allow_infinity=False)


# ----------------------------------------------------------------------
# NetworkSpec
# ----------------------------------------------------------------------
@given(a=sizes, b=sizes, same_node=st.booleans())
def test_transit_time_monotone_in_message_size(a, b, same_node):
    net = NetworkSpec()
    lo, hi = sorted((a, b))
    assert net.transit_time(lo, same_node) <= net.transit_time(hi, same_node)


@given(nbytes=sizes, bw_a=bandwidths, bw_b=bandwidths)
def test_transit_time_never_decreases_with_lower_bandwidth(
    nbytes, bw_a, bw_b
):
    lo, hi = sorted((bw_a, bw_b))
    slow = NetworkSpec(bandwidth_inter=lo, bandwidth_intra=lo)
    fast = NetworkSpec(bandwidth_inter=hi, bandwidth_intra=hi)
    for same_node in (False, True):
        assert (
            slow.transit_time(nbytes, same_node)
            >= fast.transit_time(nbytes, same_node)
        )
        assert (
            slow.injection_time(nbytes, same_node)
            >= fast.injection_time(nbytes, same_node)
        )


@given(a=sizes, b=sizes, nranks=st.integers(min_value=1, max_value=4096))
def test_collective_time_monotone_in_size_and_ranks(a, b, nranks):
    net = NetworkSpec()
    lo, hi = sorted((a, b))
    assert net.collective_time(lo, nranks) <= net.collective_time(hi, nranks)
    assert net.collective_time(lo, nranks) <= net.collective_time(
        lo, nranks * 2
    )


@given(a=sizes, b=sizes)
def test_cpu_overheads_monotone_in_message_size(a, b):
    net = NetworkSpec()
    lo, hi = sorted((a, b))
    assert net.send_cpu_time(lo) <= net.send_cpu_time(hi)
    assert net.recv_cpu_time(lo) <= net.recv_cpu_time(hi)


@given(nodes=st.integers(min_value=1, max_value=4096), nbytes=sizes)
def test_scaling_the_network_never_speeds_it_up(nodes, nbytes):
    net = NetworkSpec()
    scaled = net.scaled_to(nodes)
    assert scaled.transit_time(nbytes, False) >= net.transit_time(
        nbytes, False
    )
    # intra-node paths are unaffected by fabric size
    assert scaled.transit_time(nbytes, True) == net.transit_time(nbytes, True)


# ----------------------------------------------------------------------
# CostSpec
# ----------------------------------------------------------------------
@given(a=cells, b=cells, nvars=st.integers(min_value=1, max_value=64))
def test_stencil_time_monotone_in_cells(a, b, nvars):
    spec = CostSpec()
    lo, hi = sorted((a, b))
    assert spec.stencil_time(lo, nvars) <= spec.stencil_time(hi, nvars)
    # locality can only help; NUMA can only hurt
    assert spec.stencil_time(lo, nvars, locality=True) <= spec.stencil_time(
        lo, nvars
    )
    assert spec.stencil_time(lo, nvars, numa=True) >= spec.stencil_time(
        lo, nvars
    )


@given(a=sizes, b=sizes)
def test_copy_and_checksum_monotone_in_bytes(a, b):
    spec = CostSpec()
    lo, hi = sorted((a, b))
    assert spec.copy_time(lo) <= spec.copy_time(hi)
    assert spec.checksum_time(lo) <= spec.checksum_time(hi)
    assert spec.copy_time(hi, numa=True) >= spec.copy_time(hi)


@given(a=st.integers(min_value=1, max_value=256),
       b=st.integers(min_value=1, max_value=256))
def test_forkjoin_overhead_monotone_in_threads(a, b):
    spec = CostSpec()
    lo, hi = sorted((a, b))
    assert spec.forkjoin_overhead(lo) <= spec.forkjoin_overhead(hi)


# ----------------------------------------------------------------------
# Noise and fault injection only ever stretch
# ----------------------------------------------------------------------
@given(rank=st.integers(min_value=0, max_value=63), t=seconds)
@settings(max_examples=50)
def test_noise_model_never_shrinks_a_charge(rank, t):
    noise = NoiseModel(CostSpec(), rank)
    stretched = noise.stretch(t)
    spec = CostSpec()
    bound = t * (1 + spec.noise_amplitude) + spec.noise_spike_time
    assert t <= stretched <= bound


@given(rank=st.integers(min_value=0, max_value=3), t=seconds,
       intensity=st.floats(min_value=0.0, max_value=4.0,
                           allow_nan=False, allow_infinity=False))
@settings(max_examples=50)
def test_fault_injection_never_shrinks_a_charge(rank, t, intensity):
    inj = FaultInjector(noise_plan(intensity), NetworkSpec(), num_ranks=4)
    assert inj.cpu_stretch(rank, t, now=0.0) >= t


@given(t=seconds,
       factor=st.floats(min_value=1.0, max_value=16.0,
                        allow_nan=False, allow_infinity=False))
@settings(max_examples=50)
def test_straggler_stretch_scales_exactly(t, factor):
    inj = FaultInjector(
        straggler_plan(ranks=(0,), factor=factor), NetworkSpec(), num_ranks=2
    )
    assert inj.cpu_stretch(0, t, now=0.0) >= t * factor * (1 - 1e-12)
    assert inj.cpu_stretch(1, t, now=0.0) == t


@given(nbytes=sizes, same_node=st.booleans(),
       intensity=st.floats(min_value=0.0, max_value=4.0,
                           allow_nan=False, allow_infinity=False))
@settings(max_examples=50)
def test_message_delay_is_never_negative(nbytes, same_node, intensity):
    inj = FaultInjector(noise_plan(intensity), NetworkSpec(), num_ranks=2)
    assert inj.message_delay(0, 1, nbytes, same_node, now=0.0) >= 0.0

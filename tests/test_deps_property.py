"""Property test: DependencyTracker edges match a brute-force oracle.

For an arbitrary registration sequence over scalar handles and
(overlapping) Regions, the tracker wires a *reduced* edge set — last
writer, readers-since, commuters — rather than every conflicting pair.
The correctness condition is therefore closure equality: the transitive
closure of the tracker's edges must equal the transitive closure of the
O(n²) pairwise-conflict relation.  (Edges only ever point from earlier to
later registration, so both closures are over the same partial order.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simx import Environment
from repro.tasking.deps import DependencyTracker
from repro.tasking.regions import Region
from repro.tasking.task import AccessMode, Task

MODES = [AccessMode.IN, AccessMode.OUT, AccessMode.INOUT,
         AccessMode.COMMUTATIVE]

scalar_handles = st.sampled_from(["s0", "s1"])
region_handles = st.builds(
    lambda base, start, length: Region(base, start, start + length),
    st.sampled_from(["buf0", "buf1"]),
    st.integers(min_value=0, max_value=12),
    st.integers(min_value=1, max_value=8),
)
access_strategy = st.lists(
    st.tuples(
        st.sampled_from(MODES),
        st.one_of(scalar_handles, region_handles),
    ),
    min_size=1,
    max_size=3,
)
graph_strategy = st.lists(access_strategy, min_size=2, max_size=10)


def _touches(ha, hb) -> bool:
    """Whether two handles denote (partly) the same data."""
    if isinstance(ha, Region) and isinstance(hb, Region):
        return ha.overlaps(hb)
    if isinstance(ha, Region) or isinstance(hb, Region):
        return False
    return ha == hb


def oracle_conflicts(acc_a, acc_b) -> bool:
    """Brute force: any access pair on shared data that is not
    read-read or commutative-commutative conflicts."""
    for ma, ha in acc_a:
        for mb, hb in acc_b:
            if not _touches(ha, hb):
                continue
            if ma is AccessMode.IN and mb is AccessMode.IN:
                continue
            if (
                ma is AccessMode.COMMUTATIVE
                and mb is AccessMode.COMMUTATIVE
            ):
                continue
            return True
    return False


def transitive_closure(n, edges):
    succ = [set() for _ in range(n)]
    for a, b in edges:
        succ[a].add(b)
    for a in range(n - 1, -1, -1):  # edges go forward: reverse topo order
        for b in list(succ[a]):
            succ[a] |= succ[b]
    return {(a, b) for a in range(n) for b in succ[a]}


@settings(max_examples=200, deadline=None)
@given(graph=graph_strategy)
def test_property_tracker_edges_equal_conflict_oracle(graph):
    env = Environment()
    tracker = DependencyTracker()
    tasks = [
        Task(env, f"t{i}", accesses=acc) for i, acc in enumerate(graph)
    ]
    index = {id(t): i for i, t in enumerate(tasks)}
    for task in tasks:
        tracker.register(task)

    edges = set()
    for i, task in enumerate(tasks):
        for succ in task.successors:
            edges.add((i, index[id(succ)]))

    n = len(graph)
    oracle = {
        (a, b)
        for a in range(n)
        for b in range(a + 1, n)
        if oracle_conflicts(graph[a], graph[b])
    }

    # 1. Every wired edge is a genuine conflict (registration order).
    assert all(a < b for a, b in edges)
    assert edges <= oracle, f"spurious edges: {sorted(edges - oracle)}"

    # 2. Closure equality: the reduced edge set enforces exactly the
    #    ordering the full conflict relation demands.
    assert transitive_closure(n, edges) == transitive_closure(n, oracle)

    # 3. npred bookkeeping matches the wiring.
    npred = [0] * n
    for _a, b in edges:
        npred[b] += 1
    assert [t.npred for t in tasks] == npred

"""Tests for gather/scatter/reduce_scatter and communicator management."""

import pytest

from repro.machine import Machine, NetworkSpec, NodeSpec
from repro.mpi import SUM, World
from repro.simx import Environment


def make_world(nranks=4):
    env = Environment()
    machine = Machine(
        node=NodeSpec(cores_per_node=nranks, sockets_per_node=1),
        num_nodes=1,
        ranks_per_node=nranks,
    )
    return env, World(env, machine, NetworkSpec())


def run_all(env, world, body, nranks=4):
    results = {}

    def proc(rank):
        results[rank] = yield from body(world.comm(rank), rank)

    for r in range(nranks):
        env.process(proc(r))
    env.run()
    return results


# ----------------------------------------------------------------------
# New collectives
# ----------------------------------------------------------------------
def test_gather_collects_at_root():
    env, world = make_world()
    res = run_all(env, world, lambda c, r: c.gather(r * 10, root=1))
    assert res[1] == [0, 10, 20, 30]
    assert res[0] is None and res[2] is None and res[3] is None


def test_scatter_distributes_from_root():
    def body(comm, rank):
        values = ["a", "b", "c", "d"] if rank == 2 else None
        return (yield from comm.scatter(values, root=2))

    env, world = make_world()
    res = run_all(env, world, body)
    assert res == {0: "a", 1: "b", 2: "c", 3: "d"}


def test_scatter_wrong_length_rejected():
    env, world = make_world()

    def proc(comm):
        yield from comm.scatter([1, 2], root=0)

    env.process(proc(world.comm(0)))
    with pytest.raises(ValueError):
        env.run()


def test_reduce_scatter_sums_columns():
    def body(comm, rank):
        # rank r contributes [r, r+1, r+2, r+3]
        return (
            yield from comm.reduce_scatter(
                [rank + d for d in range(4)], op=SUM
            )
        )

    env, world = make_world()
    res = run_all(env, world, body)
    # destination d receives sum_r (r + d) = 6 + 4d
    assert res == {0: 6, 1: 10, 2: 14, 3: 18}


# ----------------------------------------------------------------------
# Communicator duplication and splitting
# ----------------------------------------------------------------------
def test_dup_is_independent_channel():
    env, world = make_world(2)
    got = []

    def rank0(comm):
        dup = yield from comm.dup()
        # Same tag on the two communicators must not cross-match.
        yield from comm.send(dest=1, tag=7, payload="world")
        yield from dup.send(dest=1, tag=7, payload="dup")

    def rank1(comm):
        dup = yield from comm.dup()
        r_dup = yield from dup.recv(source=0, tag=7)
        r_world = yield from comm.recv(source=0, tag=7)
        got.append((r_dup.data, r_world.data))

    env.process(rank0(world.comm(0)))
    env.process(rank1(world.comm(1)))
    env.run()
    assert got == [("dup", "world")]


def test_dup_preserves_rank_and_size():
    env, world = make_world(3)

    def body(comm, rank):
        dup = yield from comm.dup()
        return (dup.Get_rank(), dup.Get_size())

    res = run_all(env, world, body, nranks=3)
    assert res == {0: (0, 3), 1: (1, 3), 2: (2, 3)}


def test_split_by_parity():
    def body(comm, rank):
        sub = yield from comm.split(color=rank % 2, key=rank)
        total = yield from sub.allreduce(rank)
        return (sub.Get_rank(), sub.Get_size(), total)

    env, world = make_world()
    res = run_all(env, world, body)
    # Evens: world ranks 0, 2 -> local 0, 1; sum 2.
    assert res[0] == (0, 2, 2)
    assert res[2] == (1, 2, 2)
    # Odds: world ranks 1, 3; sum 4.
    assert res[1] == (0, 2, 4)
    assert res[3] == (1, 2, 4)


def test_split_undefined_color_returns_none():
    def body(comm, rank):
        color = None if rank == 0 else 1
        sub = yield from comm.split(color=color, key=rank)
        if sub is None:
            return None
        yield from sub.barrier()
        return sub.Get_size()

    env, world = make_world(3)
    res = run_all(env, world, body, nranks=3)
    assert res[0] is None
    assert res[1] == 2 and res[2] == 2


def test_split_key_reorders_ranks():
    def body(comm, rank):
        sub = yield from comm.split(color=0, key=-rank)  # reverse order
        return sub.Get_rank()

    env, world = make_world(3)
    res = run_all(env, world, body, nranks=3)
    assert res == {0: 2, 1: 1, 2: 0}


def test_p2p_inside_split_comm():
    def body(comm, rank):
        sub = yield from comm.split(color=rank // 2, key=rank)
        # Local rank 0 sends to local rank 1 within each half.
        if sub.Get_rank() == 0:
            yield from sub.send(dest=1, tag=3, payload=f"from{rank}")
            return None
        req = yield from sub.recv(source=0, tag=3)
        return req.data

    env, world = make_world()
    res = run_all(env, world, body)
    assert res[1] == "from0"
    assert res[3] == "from2"

"""repro.serve: protocol, journal, and broker invariants (no HTTP).

The broker invariants of ISSUE satellite (c) live here: N concurrent
clients with overlapping fingerprints get exactly one execution per
unique fingerprint, quotas hold under contention, and a journal replay
after a simulated crash completes every job without duplicate
executions.  Execution counting uses completion markers the runner
writes at the *end* of a run — an attempt killed mid-run (the crash
tests) deliberately does not count.
"""

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro import AmrConfig, RunSpec, sphere
from repro.exec import ResultCache, SweepEngine, run_spec_dict
from repro.serve import (
    Broker,
    JobRecord,
    JobStore,
    ProtocolError,
    TokenBucket,
    parse_submit,
    submit_fingerprint,
)


def small_spec(variant="mpi_only", **overrides):
    cfg_kwargs = dict(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    cfg_kwargs.update(overrides)
    return RunSpec(
        config=AmrConfig(**cfg_kwargs), machine="laptop",
        variant=variant, ranks_per_node=2,
    )


def submit_body(spec, *, tenant="anon", priority=0.0):
    return {"v": 1, "kind": "run", "spec": spec.to_dict(),
            "tenant": tenant, "priority": priority}


# ----------------------------------------------------------------------
# Runners (module-level: picklable across fork/spawn)
# ----------------------------------------------------------------------
def _marking_runner(spec_dict):
    """Real run, then a completion marker named by the fingerprint."""
    result = run_spec_dict(spec_dict)
    fp = RunSpec.from_dict(spec_dict).fingerprint()
    marker_dir = Path(os.environ["REPRO_EXEC_TEST_DIR"])
    (marker_dir / f"exec-{fp}-{os.getpid()}-{time.monotonic_ns()}").touch()
    return result


def _holding_runner(spec_dict):
    """Blocks while the HOLD file exists, then completes with a marker."""
    hold = Path(os.environ["REPRO_EXEC_TEST_DIR"]) / "HOLD"
    while hold.exists():
        time.sleep(0.02)
    return _marking_runner(spec_dict)


def executions(marker_dir, fingerprint=None) -> int:
    pattern = f"exec-{fingerprint}-*" if fingerprint else "exec-*"
    return len(list(Path(marker_dir).glob(pattern)))


@pytest.fixture
def marker_dir(tmp_path, monkeypatch):
    d = tmp_path / "markers"
    d.mkdir()
    monkeypatch.setenv("REPRO_EXEC_TEST_DIR", str(d))
    return d


def make_broker(tmp_path, *, runner=_marking_runner, jobs=2, **kwargs):
    engine = SweepEngine(
        jobs=jobs, cache=ResultCache(tmp_path / "cache"),
        runner=runner, drain_timeout=5.0,
    )
    kwargs.setdefault("quota_rate", 1000.0)
    kwargs.setdefault("quota_burst", 1000)
    broker = Broker(
        engine=engine, store=JobStore(tmp_path / "serve"),
        poll_interval=0.01, **kwargs,
    )
    return broker


def wait_terminal(broker, job_ids, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        jobs = [broker.store.get(j) for j in job_ids]
        if all(j is not None and j.terminal for j in jobs):
            return jobs
        time.sleep(0.02)
    states = [getattr(broker.store.get(j), "state", None) for j in job_ids]
    raise AssertionError(f"jobs not terminal after {timeout}s: {states}")


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
def test_parse_submit_roundtrip():
    spec = small_spec()
    kind, payload, tenant, priority = parse_submit(
        submit_body(spec, tenant="alice", priority=2.5)
    )
    assert kind == "run"
    assert payload == spec
    assert (tenant, priority) == ("alice", 2.5)
    # The service keys the cache with the spec's native fingerprint, so
    # served runs share entries with ad-hoc CLI runs.
    assert submit_fingerprint(kind, payload) == spec.fingerprint()


@pytest.mark.parametrize("mutate, code", [
    (lambda b: b.update(v=99), "unsupported_version"),
    (lambda b: b.update(kind="bogus"), "invalid_request"),
    (lambda b: b.pop("spec"), "invalid_request"),
    (lambda b: b.update(spec={"variant": "no_such_variant"}),
     "invalid_spec"),
    (lambda b: b.update(tenant=""), "invalid_request"),
    (lambda b: b.update(tenant="x" * 65), "invalid_request"),
    (lambda b: b.update(priority="high"), "invalid_request"),
])
def test_parse_submit_rejections(mutate, code):
    body = submit_body(small_spec())
    mutate(body)
    with pytest.raises(ProtocolError) as err:
        parse_submit(body)
    assert err.value.code == code
    assert err.value.exit_code == 2
    assert err.value.http_status == 400


def test_protocol_error_body_and_retry_after():
    err = ProtocolError("quota_exceeded", "slow down", retry_after=3)
    assert err.http_status == 429
    body = err.body()
    assert body["v"] == 1
    assert body["error"]["code"] == "quota_exceeded"
    assert body["error"]["retry_after"] == 3


def test_token_bucket_burst_then_refill():
    bucket = TokenBucket(capacity=2, rate=10.0)
    assert bucket.take(0.0) == 0.0
    assert bucket.take(0.0) == 0.0
    wait = bucket.take(0.0)
    assert wait == pytest.approx(0.1)
    # After the advertised wait, one token is back.
    assert bucket.take(wait) == 0.0


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
def job_record(i, state="queued", **kwargs):
    kwargs.setdefault("fingerprint", f"f{i:03d}")
    return JobRecord(id=f"j{i:03d}", tenant="t", kind="run",
                     spec={"n": i}, state=state, **kwargs)


def test_journal_replay_last_wins(tmp_path):
    store = JobStore(tmp_path)
    job = job_record(1)
    store.record(job)
    job.state = "running"
    store.record(job)
    job.state = "done"
    store.record(job)
    store.record(job_record(2))
    store.close()
    replayed = JobStore(tmp_path)
    assert len(replayed) == 2
    assert replayed.get("j001").state == "done"
    assert replayed.get("j002").state == "queued"
    # Three mutations of j001 really are three journal lines pre-compact.
    lines = (tmp_path / "jobs.jsonl").read_text().splitlines()
    assert len(lines) == 4


def test_journal_tolerates_torn_final_line_only(tmp_path):
    store = JobStore(tmp_path)
    store.record(job_record(1))
    store.record(job_record(2))
    store.close()
    path = tmp_path / "jobs.jsonl"
    with open(path, "a") as fh:
        fh.write('{"id": "j003", "tenant": "t", "ki')  # torn mid-write
    replayed = JobStore(tmp_path)
    assert len(replayed) == 2
    replayed.close()
    # The same corruption anywhere else is a loud error.
    lines = path.read_text().splitlines()
    path.write_text("\n".join([lines[-1]] + lines[:-1]) + "\n")
    with pytest.raises(ValueError, match="corrupt journal line"):
        JobStore(tmp_path)


def test_journal_compaction_collapses_history(tmp_path):
    store = JobStore(tmp_path, compact_every=10_000)
    for i in range(5):
        job = job_record(i)
        store.record(job)
        job.state = "done"
        store.record(job)
    assert len((tmp_path / "jobs.jsonl").read_text().splitlines()) == 10
    store.compact()
    assert len((tmp_path / "jobs.jsonl").read_text().splitlines()) == 5
    # The journal stays appendable after the fd swap.
    store.record(job_record(99))
    store.close()
    assert len(JobStore(tmp_path)) == 6


def test_journal_auto_compacts_at_threshold(tmp_path):
    store = JobStore(tmp_path, compact_every=8)
    job = job_record(1)
    for _ in range(20):
        store.record(job)
    lines = (tmp_path / "jobs.jsonl").read_text().splitlines()
    assert len(lines) < 20
    store.close()


def test_job_record_rejects_unknown_state():
    with pytest.raises(ValueError, match="unknown job state"):
        job_record(1, state="paused")


# ----------------------------------------------------------------------
# Broker invariants (satellite c)
# ----------------------------------------------------------------------
def test_concurrent_overlapping_submits_execute_each_fingerprint_once(
    tmp_path, marker_dir,
):
    broker = make_broker(tmp_path)
    broker.start()
    try:
        specs = [small_spec(), small_spec(variant="fork_join")]
        responses = []
        errors = []

        def client(i):
            try:
                body = submit_body(
                    specs[i % 2], tenant=f"tenant{i % 3}",
                )
                responses.append(broker.submit(body))
            except Exception as exc:  # pragma: no cover - debug aid
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(responses) == 8
        job_ids = [r["job"]["id"] for r in responses]
        jobs = wait_terminal(broker, job_ids)
        assert all(j.state == "done" for j in jobs)
        for spec in specs:
            # Exactly one completion marker per unique fingerprint, no
            # matter how many clients raced on it.
            assert executions(marker_dir, spec.fingerprint()) == 1
        # Every non-primary submit was coalesced (or cached if it landed
        # after completion) — never a second execution.
        modes = sorted(r["mode"] for r in responses)
        assert modes.count("new") == 2
        assert set(modes) <= {"new", "coalesced", "cached"}
    finally:
        broker.shutdown(drain_timeout=5.0)


def test_cache_fast_path_skips_execution(tmp_path, marker_dir):
    broker = make_broker(tmp_path)
    broker.start()
    try:
        spec = small_spec()
        first = broker.submit(submit_body(spec))
        wait_terminal(broker, [first["job"]["id"]])
        again = broker.submit(submit_body(spec, tenant="other"))
        assert again["mode"] == "cached"
        assert again["job"]["state"] == "done"
        assert again["job"]["cached"] is True
        assert executions(marker_dir, spec.fingerprint()) == 1
        # Both jobs resolve to the same result payload.
        r1 = broker.result(first["job"]["id"])["result"]
        r2 = broker.result(again["job"]["id"])["result"]
        assert json.dumps(r1, sort_keys=True) == json.dumps(
            r2, sort_keys=True
        )
    finally:
        broker.shutdown(drain_timeout=5.0)


def test_quota_enforced_under_contention(tmp_path, marker_dir):
    broker = make_broker(
        tmp_path, quota_rate=0.001, quota_burst=3,
    )
    # No broker.start(): admission control needs no scheduler.
    spec_for = lambda i: small_spec(num_tsteps=1, checksum_freq=2 + i)
    rejected = []
    accepted = []

    def client(i):
        try:
            accepted.append(broker.submit(
                submit_body(spec_for(i), tenant="greedy")
            ))
        except ProtocolError as exc:
            rejected.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Burst of 3 admitted; the rest rejected with a Retry-After hint.
    assert len(accepted) == 3
    assert len(rejected) == 5
    for exc in rejected:
        assert exc.code == "quota_exceeded"
        assert exc.http_status == 429
        assert exc.retry_after >= 1
    # A different tenant draws from its own bucket.
    other = broker.submit(submit_body(spec_for(99), tenant="patient"))
    assert other["mode"] == "new"
    broker.shutdown(drain_timeout=0.0)


def test_queue_cap_backpressure(tmp_path, marker_dir):
    broker = make_broker(tmp_path, queue_cap=2)
    try:
        broker.submit(submit_body(small_spec(checksum_freq=2)))
        broker.submit(submit_body(small_spec(checksum_freq=3)))
        with pytest.raises(ProtocolError) as err:
            broker.submit(submit_body(small_spec(checksum_freq=4)))
        assert err.value.code == "queue_full"
        assert err.value.http_status == 429
        assert err.value.retry_after >= 1
        # Coalescing onto an existing execution is not new queue depth.
        dup = broker.submit(submit_body(small_spec(checksum_freq=2),
                                        tenant="other"))
        assert dup["mode"] == "coalesced"
    finally:
        broker.shutdown(drain_timeout=0.0)


def test_cancel_queued_job(tmp_path, marker_dir):
    broker = make_broker(tmp_path)
    # Not started: the job stays queued, cancel must be immediate.
    submitted = broker.submit(submit_body(small_spec()))
    job_id = submitted["job"]["id"]
    canceled = broker.cancel(job_id)
    assert canceled["job"]["state"] == "canceled"
    with pytest.raises(ProtocolError) as err:
        broker.result(job_id)
    assert err.value.code == "conflict"
    # Cancel of a terminal job conflicts too.
    with pytest.raises(ProtocolError) as err:
        broker.cancel(job_id)
    assert err.value.code == "conflict"
    broker.shutdown(drain_timeout=0.0)


def test_coalesced_job_survives_primary_cancel(tmp_path, marker_dir):
    (marker_dir / "HOLD").touch()
    broker = make_broker(tmp_path, runner=_holding_runner)
    broker.start()
    try:
        spec = small_spec()
        first = broker.submit(submit_body(spec, tenant="a"))
        second = broker.submit(submit_body(spec, tenant="b"))
        assert second["mode"] == "coalesced"
        # Canceling the primary leaves the execution alive for the
        # coalesced attachee.
        broker.cancel(first["job"]["id"])
        (marker_dir / "HOLD").unlink()
        jobs = wait_terminal(broker, [second["job"]["id"]])
        assert jobs[0].state == "done"
        assert broker.store.get(first["job"]["id"]).state == "canceled"
        assert executions(marker_dir, spec.fingerprint()) == 1
    finally:
        broker.shutdown(drain_timeout=5.0)


def test_journal_replay_recovers_after_simulated_crash(
    tmp_path, marker_dir,
):
    (marker_dir / "HOLD").touch()
    broker = make_broker(tmp_path, runner=_holding_runner, jobs=1)
    broker.start()
    spec_a = small_spec()
    spec_b = small_spec(variant="fork_join")
    ids = [
        broker.submit(submit_body(spec_a, tenant="a"))["job"]["id"],
        broker.submit(submit_body(spec_b, tenant="b"))["job"]["id"],
        broker.submit(submit_body(spec_a, tenant="c"))["job"]["id"],
    ]
    # Wait until the first execution is journaled as running.
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if any(broker.store.get(j).state == "running" for j in ids):
            break
        time.sleep(0.02)
    else:
        raise AssertionError("no job reached running")
    # Simulated crash: kill the threads and worker processes without any
    # graceful shutdown — the journal is whatever was already on disk.
    broker._stop.set()
    for thread in broker._threads:
        thread.join(timeout=5)
    broker.session.close()
    broker.store.close()

    # Restart: a fresh broker over the same journal directory.
    (marker_dir / "HOLD").unlink()
    engine = SweepEngine(
        jobs=1, cache=ResultCache(tmp_path / "cache"),
        runner=_marking_runner, drain_timeout=5.0,
    )
    broker2 = Broker(
        engine=engine, store=JobStore(tmp_path / "serve"),
        poll_interval=0.01, quota_rate=1000.0, quota_burst=1000,
    )
    # Recovery re-queued the interrupted execution rather than losing
    # or completing it blindly.
    assert {broker2.store.get(j).state for j in ids} == {"queued"}
    broker2.start()
    try:
        jobs = wait_terminal(broker2, ids)
        assert [j.state for j in jobs] == ["done", "done", "done"]
        # The killed first attempt never completed (no marker), so
        # exactly one *completed* execution per unique fingerprint.
        assert executions(marker_dir, spec_a.fingerprint()) == 1
        assert executions(marker_dir, spec_b.fingerprint()) == 1
        # Coalesced duplicate shares the primary's result bytes.
        r1 = broker2.result(ids[0])["result"]
        r3 = broker2.result(ids[2])["result"]
        assert json.dumps(r1, sort_keys=True) == json.dumps(
            r3, sort_keys=True
        )
    finally:
        broker2.shutdown(drain_timeout=5.0)


def test_restart_reattaches_done_results_from_cache(tmp_path, marker_dir):
    broker = make_broker(tmp_path)
    broker.start()
    spec = small_spec()
    job_id = broker.submit(submit_body(spec))["job"]["id"]
    wait_terminal(broker, [job_id])
    broker.shutdown(drain_timeout=5.0)

    engine = SweepEngine(
        jobs=2, cache=ResultCache(tmp_path / "cache"),
        runner=_marking_runner,
    )
    broker2 = Broker(
        engine=engine, store=JobStore(tmp_path / "serve"),
        quota_rate=1000.0, quota_burst=1000,
    )
    # Without ever starting the scheduler: the result comes straight
    # from the content-addressed cache the previous life wrote.
    payload = broker2.result(job_id)["result"]
    assert payload["total_time"] > 0
    assert executions(marker_dir, spec.fingerprint()) == 1
    broker2.shutdown(drain_timeout=0.0)


def test_metrics_and_queue_snapshot_shape(tmp_path, marker_dir):
    broker = make_broker(tmp_path)
    broker.start()
    try:
        job_id = broker.submit(submit_body(small_spec()))["job"]["id"]
        wait_terminal(broker, [job_id])
        metrics = broker.metrics()
        assert metrics["v"] == 1
        assert metrics["jobs"]["total"] == 1
        assert metrics["jobs"]["by_state"]["done"] == 1
        assert metrics["executions"]["started"] == 1
        assert metrics["executions"]["completed"] == 1
        assert metrics["queue"]["cap"] == broker.queue_cap
        assert metrics["engine"]["jobs"] == 2
        assert metrics["queue"]["wait_histogram_ms"]  # at least 1 bucket
        snapshot = broker.queue_snapshot()
        assert snapshot["depth"] == 0
        assert snapshot["queued"] == [] and snapshot["running"] == []
    finally:
        broker.shutdown(drain_timeout=5.0)


def test_shutdown_rejects_new_submits(tmp_path, marker_dir):
    broker = make_broker(tmp_path)
    broker.shutdown(drain_timeout=0.0)
    with pytest.raises(ProtocolError) as err:
        broker.submit(submit_body(small_spec()))
    assert err.value.code == "shutting_down"
    assert err.value.http_status == 503


# ----------------------------------------------------------------------
# Tune jobs
# ----------------------------------------------------------------------
def small_tune():
    from repro.tune import TuneSpec

    return TuneSpec(
        base=small_spec(variant="tampi_dataflow"),
        space={"variant": ("mpi_only", "tampi_dataflow")},
        name="serve-tune",
    )


def tune_body(tune, *, tenant="anon", priority=0.0):
    return {"v": 1, "kind": "tune", "spec": tune.to_dict(),
            "tenant": tenant, "priority": priority}


def test_parse_submit_tune_roundtrip():
    tune = small_tune()
    kind, payload, tenant, priority = parse_submit(tune_body(tune))
    assert kind == "tune"
    assert payload == tune
    # Tunes coalesce/memoize on their native fingerprint, exactly like
    # runs — identical to a local `miniamr-sim tune` declaration.
    assert submit_fingerprint(kind, payload) == tune.fingerprint()


def test_tune_submit_executes_and_memoizes(tmp_path, marker_dir):
    broker = make_broker(tmp_path)
    broker.start()
    try:
        tune = small_tune()
        first = broker.submit(tune_body(tune))
        assert first["mode"] == "new"
        wait_terminal(broker, [first["job"]["id"]])
        job = broker.store.get(first["job"]["id"])
        assert job.state == "done", job.error
        report = broker.result(first["job"]["id"])["result"]
        assert report["name"] == "serve-tune"
        assert [e["rank"] for e in report["entries"]] == [1, 2]
        assert report["baseline"] is not None
        # An identical re-submit is served from the memo, no new work.
        again = broker.submit(tune_body(tune, tenant="other"))
        assert again["mode"] == "cached"
        assert again["job"]["state"] == "done"
        duplicate = broker.result(again["job"]["id"])["result"]
        assert json.dumps(duplicate, sort_keys=True) == json.dumps(
            report, sort_keys=True
        )
    finally:
        broker.shutdown(drain_timeout=5.0)


def test_tune_submit_rejects_invalid_spec(tmp_path, marker_dir):
    broker = make_broker(tmp_path)
    broker.start()
    try:
        body = tune_body(small_tune())
        body["spec"]["space"] = {}
        with pytest.raises(ProtocolError) as err:
            broker.submit(body)
        assert err.value.code == "invalid_spec"
    finally:
        broker.shutdown(drain_timeout=5.0)

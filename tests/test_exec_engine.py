"""SweepEngine: parallel==serial, caching, crash/timeout isolation."""

import os
import time
from pathlib import Path

import pytest

from repro import AmrConfig, RunSpec, sphere
from repro.bench import weak_scaling
from repro.exec import (
    ResultCache,
    Sweep,
    SweepEngine,
    SweepError,
    run_spec_dict,
)


def small_config(num_ranks=2, **overrides):
    kwargs = dict(
        npx=num_ranks, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    kwargs.update(overrides)
    return AmrConfig(**kwargs)


def small_sweep():
    return [
        RunSpec(config=small_config(), machine="laptop", variant=v,
                ranks_per_node=2)
        for v in ("mpi_only", "fork_join", "tampi_dataflow")
    ]


# ----------------------------------------------------------------------
# Fault-injection runners (module-level: picklable; fork inherits state).
# ----------------------------------------------------------------------
def _crash_until_third_attempt(spec_dict):
    marker_dir = Path(os.environ["REPRO_EXEC_TEST_DIR"])
    attempts = len(list(marker_dir.glob("attempt-*")))
    (marker_dir / f"attempt-{attempts}").touch()
    if attempts < 2:
        os._exit(42)  # simulate a hard worker death (no exception path)
    return run_spec_dict(spec_dict)


def _crash_fork_join_only(spec_dict):
    if spec_dict["variant"] == "fork_join":
        os._exit(9)
    return run_spec_dict(spec_dict)


def _hang_forever(spec_dict):
    time.sleep(600)


def _raise_value_error(spec_dict):
    raise ValueError("deterministic failure, retrying cannot help")


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------
def test_parallel_equals_serial_on_small_sweep():
    specs = small_sweep()
    serial = SweepEngine(jobs=1).run(specs)
    parallel = SweepEngine(jobs=3).run(specs)
    assert serial.failed == parallel.failed == 0
    assert parallel.results == serial.results


def test_parallel_equals_serial_weak_scaling():
    serial = weak_scaling(node_counts=(1, 2), quick=True,
                          engine=SweepEngine(jobs=1))
    parallel = weak_scaling(node_counts=(1, 2), quick=True,
                            engine=SweepEngine(jobs=4))
    assert parallel.points == serial.points


def test_outcomes_preserve_input_order():
    specs = small_sweep()
    report = SweepEngine(jobs=3).run(Sweep(specs, name="order"))
    assert [o.spec for o in report.outcomes] == specs
    assert [o.index for o in report.outcomes] == [0, 1, 2]


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------
def test_warm_cache_executes_nothing(tmp_path):
    specs = small_sweep()
    cache = ResultCache(tmp_path / "cache")
    cold = SweepEngine(jobs=2, cache=cache).run(specs)
    assert cold.executed == 3 and cold.cached == 0
    warm = SweepEngine(jobs=2, cache=cache).run(specs)
    assert warm.executed == 0 and warm.cached == 3
    assert warm.results == cold.results


def test_serial_runs_also_fill_the_cache(tmp_path):
    specs = small_sweep()
    cache = ResultCache(tmp_path / "cache")
    SweepEngine(jobs=1, cache=cache).run(specs)
    warm = SweepEngine(jobs=1, cache=cache).run(specs)
    assert warm.executed == 0 and warm.cached == 3


def test_trace_specs_bypass_the_cache(tmp_path):
    spec = RunSpec(config=small_config(), machine="laptop",
                   variant="tampi_dataflow", ranks_per_node=2, trace=True)
    cache = ResultCache(tmp_path / "cache")
    first = SweepEngine(jobs=2, cache=cache).run([spec])
    second = SweepEngine(jobs=2, cache=cache).run([spec])
    assert len(cache) == 0
    assert first.executed == second.executed == 1
    # Trace runs stay in-process, so the live tracer is present.
    assert first.outcomes[0].result.tracer is not None


# ----------------------------------------------------------------------
# Fault isolation
# ----------------------------------------------------------------------
def test_worker_crash_is_retried_then_succeeds(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_TEST_DIR", str(tmp_path))
    spec = small_sweep()[2]
    engine = SweepEngine(jobs=2, retries=2, backoff=0.01,
                         mp_context="fork",
                         runner=_crash_until_third_attempt)
    report = engine.run([spec])
    outcome = report.outcomes[0]
    assert outcome.status == "ok"
    assert outcome.attempts == 3
    assert outcome.result == SweepEngine(jobs=1).run([spec]).results[0]


def test_worker_crash_fails_only_that_run():
    specs = small_sweep()
    engine = SweepEngine(jobs=2, retries=1, backoff=0.01,
                         mp_context="fork", runner=_crash_fork_join_only)
    report = engine.run(specs)
    by_variant = {o.spec.variant: o for o in report.outcomes}
    assert by_variant["fork_join"].status == "failed"
    assert by_variant["fork_join"].attempts == 2  # initial + 1 retry
    assert "worker died" in by_variant["fork_join"].error
    assert by_variant["mpi_only"].status == "ok"
    assert by_variant["tampi_dataflow"].status == "ok"
    assert report.failed == 1 and report.executed == 2
    with pytest.raises(SweepError, match="fork_join"):
        report.raise_failures()


def test_timeout_kills_and_fails_the_run():
    spec = small_sweep()[0]
    engine = SweepEngine(jobs=2, timeout=0.25, retries=0,
                         mp_context="fork", runner=_hang_forever)
    report = engine.run([spec])
    outcome = report.outcomes[0]
    assert outcome.status == "failed"
    assert "timed out" in outcome.error


def test_deterministic_exception_is_not_retried():
    spec = small_sweep()[0]
    engine = SweepEngine(jobs=2, retries=5, backoff=0.01,
                         mp_context="fork", runner=_raise_value_error)
    report = engine.run([spec])
    outcome = report.outcomes[0]
    assert outcome.status == "failed"
    assert outcome.attempts == 1
    assert "deterministic failure" in outcome.error


def test_inline_errors_become_failed_outcomes():
    bad = RunSpec(config=small_config(num_ranks=2), machine="laptop",
                  variant="tampi_dataflow", num_nodes=1, ranks_per_node=4)
    report = SweepEngine(jobs=1).run([bad])
    assert report.failed == 1
    assert "rank grid" in report.outcomes[0].error
    with pytest.raises(SweepError):
        report.raise_failures()


# ----------------------------------------------------------------------
# Progress reporting
# ----------------------------------------------------------------------
def test_progress_events_are_emitted(tmp_path):
    events = []
    specs = small_sweep()
    cache = ResultCache(tmp_path / "cache")
    SweepEngine(jobs=2, cache=cache, progress=events.append).run(specs)
    assert sum(1 for e in events if e["event"] == "ok") == 3
    SweepEngine(jobs=2, cache=cache, progress=events.append).run(specs)
    cached = [e for e in events if e["event"] == "cached"]
    assert len(cached) == 3
    assert all(e["total"] == 3 for e in events)
    ok = [e for e in events if e["event"] == "ok"]
    assert all(e["wall_time"] > 0 for e in ok)


def test_report_summary_mentions_counts(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    report = SweepEngine(jobs=1, cache=cache).run(small_sweep())
    text = report.summary()
    assert "3 executed" in text and "0 cached" in text


# ----------------------------------------------------------------------
# Partitioned runs claim multiple pool slots
# ----------------------------------------------------------------------
def test_partitioned_run_through_the_pool_matches_serial():
    """A ``pdes_workers > 1`` spec dispatched by the pool spawns its PDES
    workers from a non-daemonic child and reproduces the serial result
    byte for byte."""
    import json
    from dataclasses import replace

    cfg = small_config(num_ranks=4, npx=2, npy=2, init_x=1, init_y=1)
    spec = RunSpec(config=cfg, machine="laptop", variant="mpi_only",
                   ranks_per_node=4)
    sweep = Sweep([spec, replace(spec, pdes_workers=2)],
                  labels=["serial", "partitioned"])
    report = SweepEngine(jobs=2).run(sweep)
    outs = {}
    for o in report.outcomes:
        assert o.status == "ok", f"{o.label}: {o.error}"
        outs[o.label] = json.dumps(o.result.to_dict(), sort_keys=True)
    assert outs["serial"] == outs["partitioned"]


def test_partitioned_run_wider_than_the_pool_still_completes():
    """Slot demand is clamped to the pool width, and a wide task always
    launches once the pool is otherwise idle — no starvation."""
    from dataclasses import replace

    cfg = small_config(num_ranks=4, npx=2, npy=2, init_x=1, init_y=1)
    spec = RunSpec(config=cfg, machine="laptop", variant="mpi_only",
                   ranks_per_node=4)
    specs = [replace(spec, pdes_workers=8),
             replace(spec, pdes_workers=2, scheduler="fifo")]
    report = SweepEngine(jobs=2).run(
        Sweep(specs, labels=["wide", "narrow"])
    )
    assert report.failed == 0


def test_pending_slot_widths_bin_pack():
    """The scheduler never oversubscribes: concurrent slot usage stays
    within ``jobs`` (verified via start/finish progress ordering)."""
    from dataclasses import replace

    cfg = small_config(num_ranks=4, npx=2, npy=2, init_x=1, init_y=1)
    spec = RunSpec(config=cfg, machine="laptop", variant="mpi_only",
                   ranks_per_node=4)
    # Three 2-slot tasks in a 4-slot pool: at most two run at once.
    specs = [replace(spec, pdes_workers=2, sched_seed=i) for i in range(3)]
    events = []
    report = SweepEngine(jobs=4, progress=events.append).run(
        Sweep(specs, labels=["a", "b", "c"])
    )
    assert report.failed == 0
    concurrent = peak = 0
    for e in events:
        if e["event"] == "start":
            concurrent += 1
            peak = max(peak, concurrent)
        elif e["event"] in ("ok", "failed"):
            concurrent -= 1
    assert peak <= 2, f"pool oversubscribed: {peak} 2-slot tasks at once"

"""Integration tests: full simulated runs of all three variants.

The central functional validation of the reproduction: on the same input,
the MPI-only reference, the fork-join hybrid, and the TAMPI+OSS data-flow
port must compute the *same physics* — identical global checksums up to
floating-point reduction order — while producing different timing/behavior
characteristics.
"""

import numpy as np
import pytest

from repro import AmrConfig, RunSpec, laptop, run_simulation, sphere
from repro.machine import MachineSpec, NetworkSpec, NodeSpec, CostSpec

BASE = dict(
    nx=4, ny=4, nz=4, num_vars=4,
    num_tsteps=4, stages_per_ts=4, refine_freq=2, checksum_freq=4,
    max_refine_level=2,
    objects=(
        sphere(center=(0.3, 0.3, 0.3), radius=0.25, move=(0.05, 0.05, 0.0)),
    ),
)


def mpi_config(**kw):
    cfg = dict(BASE, npx=2, npy=2, npz=1, init_x=1, init_y=1, init_z=2)
    cfg.update(kw)
    return AmrConfig(**cfg)


def hybrid_config(**kw):
    cfg = dict(BASE, npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2)
    cfg.update(kw)
    return AmrConfig(**cfg)


def run(variant, cfg=None, **kw):
    rpn = kw.pop("ranks_per_node", 4 if variant == "mpi_only" else 2)
    cfg = cfg or (mpi_config() if variant == "mpi_only" else hybrid_config())
    return run_simulation(RunSpec(
        config=cfg, machine=laptop(), variant=variant, num_nodes=1,
        ranks_per_node=rpn, **kw,
    ))


@pytest.fixture(scope="module")
def results():
    return {
        "mpi_only": run("mpi_only"),
        "fork_join": run("fork_join"),
        "tampi_dataflow": run("tampi_dataflow"),
    }


# ----------------------------------------------------------------------
# Functional equivalence
# ----------------------------------------------------------------------
def test_all_variants_complete(results):
    for res in results.values():
        assert res.total_time > 0


def test_same_final_block_count(results):
    counts = {v: r.num_blocks for v, r in results.items()}
    assert len(set(counts.values())) == 1, counts


def test_same_number_of_checksums(results):
    lens = {v: len(r.checksums) for v, r in results.items()}
    assert len(set(lens.values())) == 1, lens
    assert lens["mpi_only"] == 4  # 16 stages / checksum_freq 4


def test_checksums_match_across_variants(results):
    """THE functional test: identical physics across parallelizations."""
    ref = results["mpi_only"].checksums
    for variant in ("fork_join", "tampi_dataflow"):
        other = results[variant].checksums
        for (_, c_ref, _), (_, c_other, _) in zip(ref, other):
            rel = np.max(np.abs(c_ref - c_other) / np.abs(c_ref))
            assert rel < 1e-12, f"{variant} diverged: rel={rel}"


def test_checksums_evolve_over_time(results):
    """The stencil actually changes the field between checkpoints."""
    cs = results["mpi_only"].checksums
    first = cs[0][1]
    last = cs[-1][1]
    assert not np.allclose(first, last)


def test_flops_counted_identically(results):
    flops = {v: r.flops for v, r in results.items()}
    assert len(set(flops.values())) == 1, flops
    assert flops["mpi_only"] > 0


def test_refinement_happened(results):
    res = results["mpi_only"]
    assert res.num_blocks > 8  # refinement added blocks
    assert res.refine_time > 0


def test_load_is_balanced_after_run(results):
    for res in results.values():
        assert res.imbalance < 1.6


def test_runs_are_deterministic():
    a = run("tampi_dataflow")
    b = run("tampi_dataflow")
    assert a.total_time == b.total_time
    assert a.num_blocks == b.num_blocks
    for (_, ca, _), (_, cb, _) in zip(a.checksums, b.checksums):
        assert np.array_equal(ca, cb)


# ----------------------------------------------------------------------
# Synthetic payload mode
# ----------------------------------------------------------------------
def test_synthetic_mode_matches_structure():
    real = run("tampi_dataflow")
    synth = run("tampi_dataflow", cfg=hybrid_config(payload="synthetic"))
    assert synth.num_blocks == real.num_blocks
    assert synth.flops == real.flops
    assert len(synth.checksums) == len(real.checksums)


def test_synthetic_mode_same_simulated_time():
    """Timing must not depend on whether payloads are real or synthetic."""
    real = run("mpi_only")
    synth = run("mpi_only", cfg=mpi_config(payload="synthetic"))
    assert synth.total_time == pytest.approx(real.total_time, rel=1e-9)


# ----------------------------------------------------------------------
# Driver interface
# ----------------------------------------------------------------------
def test_unknown_variant_rejected():
    with pytest.raises(ValueError, match="unknown variant"):
        run_simulation(RunSpec(
            config=mpi_config(), machine=laptop(), variant="magic",
            num_nodes=1,
        ))


def test_rank_grid_mismatch_rejected():
    with pytest.raises(ValueError, match="rank grid"):
        run_simulation(RunSpec(
            config=mpi_config(), machine=laptop(), variant="mpi_only",
            num_nodes=1, ranks_per_node=2,
        ))


def test_mpi_only_defaults_to_one_rank_per_core():
    res = run_simulation(RunSpec(
        config=mpi_config(), machine=laptop(), variant="mpi_only",
        num_nodes=1,
    ))
    assert res.ranks_per_node == 4


def test_cost_overrides_change_timing():
    slow = run_simulation(RunSpec(
        config=mpi_config(), machine=laptop(), variant="mpi_only",
        num_nodes=1, cost_overrides={"stencil_flops_per_sec": 1.0e9},
    ))
    fast = run("mpi_only")
    assert slow.total_time > fast.total_time


def test_trace_collection():
    res = run("tampi_dataflow", trace=True)
    assert res.tracer is not None
    kinds = {e.kind for e in res.tracer.events}
    assert "task" in kinds and "mpi" in kinds and "phase" in kinds
    phases = {e.phase for e in res.tracer.events if e.kind == "task"}
    assert "stencil" in phases
    assert "refine" in {e.name for e in res.tracer.events if e.kind == "phase"}


# ----------------------------------------------------------------------
# Paper options
# ----------------------------------------------------------------------
def test_send_faces_increases_message_count():
    agg = run("tampi_dataflow")
    fine = run(
        "tampi_dataflow",
        cfg=hybrid_config(send_faces=True, separate_buffers=True),
    )
    assert fine.comm_stats.messages > agg.comm_stats.messages
    # Same physics regardless of message granularity.
    for (_, ca, _), (_, cb, _) in zip(agg.checksums, fine.checksums):
        assert np.max(np.abs(ca - cb) / np.abs(ca)) < 1e-12


def test_max_comm_tasks_caps_message_count():
    capped = run(
        "tampi_dataflow",
        cfg=hybrid_config(
            send_faces=True, separate_buffers=True, max_comm_tasks=2
        ),
    )
    fine = run(
        "tampi_dataflow",
        cfg=hybrid_config(send_faces=True, separate_buffers=True),
    )
    assert capped.comm_stats.messages < fine.comm_stats.messages


def test_delayed_checksum_same_results():
    delayed = run("tampi_dataflow", delayed_checksum=True)
    strict = run("tampi_dataflow", delayed_checksum=False)
    for (_, ca, _), (_, cb, _) in zip(delayed.checksums, strict.checksums):
        assert np.max(np.abs(ca - cb) / np.abs(ca)) < 1e-12


def test_fifo_scheduler_same_results():
    loc = run("tampi_dataflow", scheduler="locality")
    fifo = run("tampi_dataflow", scheduler="fifo")
    assert loc.num_blocks == fifo.num_blocks
    for (_, ca, _), (_, cb, _) in zip(loc.checksums, fifo.checksums):
        assert np.max(np.abs(ca - cb) / np.abs(ca)) < 1e-12


def test_capacity_limited_exchange_needs_multiple_rounds():
    """With a tight per-rank block cap the ACK exchange defers moves."""
    cfg = hybrid_config(max_blocks_per_rank=120)
    res = run("tampi_dataflow", cfg=cfg)
    # The run completes and conserves the block count.
    unlimited = run("tampi_dataflow")
    assert res.num_blocks == unlimited.num_blocks
    for (_, ca, _), (_, cb, _) in zip(res.checksums, unlimited.checksums):
        assert np.max(np.abs(ca - cb) / np.abs(ca)) < 1e-12


def test_numa_penalty_slows_numa_spanning_rank():
    """One rank spanning both sockets pays the NUMA penalty (the effect
    behind paper Table I row 1)."""
    spec = MachineSpec(
        node=NodeSpec(cores_per_node=4, sockets_per_node=2),
        network=NetworkSpec(),
        cost=CostSpec(),
        name="numa-test",
    )
    # Blocks big enough that compute dominates runtime overheads.
    cfg = AmrConfig(**dict(
        BASE, npx=1, npy=1, npz=1, init_x=2, init_y=2, init_z=2,
        nx=10, ny=10, nz=10, num_vars=8))
    penalized = run_simulation(RunSpec(
        config=cfg, machine=spec, variant="tampi_dataflow", num_nodes=1,
        ranks_per_node=1,
    ))
    unpenalized = run_simulation(RunSpec(
        config=cfg, machine=spec, variant="tampi_dataflow", num_nodes=1,
        ranks_per_node=1, cost_overrides={"numa_penalty": 1.0},
    ))
    assert penalized.total_time > unpenalized.total_time * 1.1

"""Partition maps and the lookahead derivation against real machines."""

import pytest

from repro import get_preset
from repro.simx.parallel import (
    LOOKAHEAD_MARGIN,
    PartitionMap,
    cross_partition_latency,
    lookahead,
)


def _machine(nodes=4, rpn=4, preset="marenostrum4"):
    spec = get_preset(preset)()
    return spec, spec.machine(num_nodes=nodes, ranks_per_node=rpn)


# ----------------------------------------------------------------------
# Node policy
# ----------------------------------------------------------------------
def test_node_policy_keeps_nodes_whole():
    _spec, machine = _machine(nodes=4, rpn=4)
    pmap = PartitionMap.build(machine, 2, "node")
    assert pmap.num_workers == 2
    for node in range(machine.num_nodes):
        owners = {pmap.owner_of(r) for r in machine.ranks_on_node(node)}
        assert len(owners) == 1, f"node {node} split across workers"
    # Both workers own two of the four nodes.
    assert [len(pmap.local_ranks(w)) for w in range(2)] == [8, 8]


def test_node_policy_degrades_to_contiguous_when_oversplit():
    """More workers than nodes: the node policy falls back to a
    contiguous rank split rather than leaving workers empty."""
    _spec, machine = _machine(nodes=2, rpn=4)
    pmap = PartitionMap.build(machine, 4, "node")
    assert pmap.num_workers == 4
    assert all(pmap.local_ranks(w) for w in range(4))


def test_workers_clamped_to_rank_count():
    _spec, machine = _machine(nodes=1, rpn=2)
    pmap = PartitionMap.build(machine, 16)
    assert pmap.num_workers == 2


def test_unknown_policy_rejected():
    _spec, machine = _machine()
    with pytest.raises(ValueError):
        PartitionMap.build(machine, 2, "striped")


# ----------------------------------------------------------------------
# Cross-partition latency and lookahead
# ----------------------------------------------------------------------
def test_node_cuts_see_inter_node_latency():
    spec, machine = _machine(nodes=4, rpn=4)
    network = spec.network.scaled_to(4)
    pmap = PartitionMap.build(machine, 2, "node")
    assert cross_partition_latency(pmap, machine, network) == \
        network.latency_inter


def test_intra_node_cuts_see_intra_node_latency():
    spec, machine = _machine(nodes=1, rpn=8)
    network = spec.network.scaled_to(1)
    pmap = PartitionMap.build(machine, 2, "contiguous")
    assert cross_partition_latency(pmap, machine, network) == \
        network.latency_intra


def test_single_worker_has_no_cross_latency():
    spec, machine = _machine(nodes=2, rpn=2)
    network = spec.network.scaled_to(2)
    pmap = PartitionMap.build(machine, 1)
    assert cross_partition_latency(pmap, machine, network) == float("inf")


def test_lookahead_is_positive_and_bounded():
    spec, machine = _machine(nodes=4, rpn=4)
    network = spec.network.scaled_to(4)
    for policy in ("node", "contiguous"):
        pmap = PartitionMap.build(machine, 4, policy)
        la = lookahead(pmap, machine, network)
        assert 0 < la
        assert la <= network.collective_round * LOOKAHEAD_MARGIN
        assert la <= (
            network.injection_gap
            + cross_partition_latency(pmap, machine, network)
        ) * LOOKAHEAD_MARGIN


def test_node_policy_never_shrinks_lookahead_vs_contiguous():
    """Keeping nodes whole is the default because inter-node latency
    dominates intra-node: the node policy's lookahead is at least the
    contiguous policy's on every machine shape."""
    for nodes, rpn in ((2, 4), (4, 4), (8, 2)):
        spec, machine = _machine(nodes=nodes, rpn=rpn)
        network = spec.network.scaled_to(nodes)
        la_node = lookahead(
            PartitionMap.build(machine, 2, "node"), machine, network
        )
        la_cont = lookahead(
            PartitionMap.build(machine, 2, "contiguous"), machine, network
        )
        assert la_node >= la_cont

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_run_command_prints_metrics(capsys):
    rc = main([
        "run", "--variant", "mpi_only", "--preset", "laptop",
        "--nodes", "1", "--root", "2", "2", "1",
        "--nx", "4", "--num-vars", "2", "--tsteps", "1", "--stages", "2",
        "--checksum-freq", "2", "--max-refine-level", "1",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "total time:" in out
    assert "GFLOPS" in out
    assert "mpi_only" in out


def test_run_tampi_with_paper_options(capsys):
    rc = main([
        "run", "--variant", "tampi_dataflow", "--preset", "laptop",
        "--nodes", "1", "--ranks-per-node", "2", "--root", "2", "2", "2",
        "--nx", "4", "--num-vars", "2", "--tsteps", "1", "--stages", "2",
        "--max-refine-level", "1", "--send-faces", "--separate-buffers",
        "--max-comm-tasks", "4",
    ])
    assert rc == 0
    assert "tampi_dataflow" in capsys.readouterr().out


def test_bench_table1_quick(capsys):
    rc = main(["bench", "table1", "--quick"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "tampi_dataflow" in out


def test_bench_weak_quick(capsys):
    rc = main(["bench", "weak", "--quick", "--nodes", "1", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "weak scaling" in out


def test_unknown_variant_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--variant", "nope"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])

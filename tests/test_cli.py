"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_run_command_prints_metrics(capsys):
    rc = main([
        "run", "--variant", "mpi_only", "--preset", "laptop",
        "--nodes", "1", "--root", "2", "2", "1",
        "--nx", "4", "--num-vars", "2", "--tsteps", "1", "--stages", "2",
        "--checksum-freq", "2", "--max-refine-level", "1",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "total time:" in out
    assert "GFLOPS" in out
    assert "mpi_only" in out


def test_run_partitioned_matches_serial_output(capsys):
    argv = [
        "run", "--variant", "mpi_only", "--preset", "laptop",
        "--nodes", "1", "--root", "2", "2", "1",
        "--nx", "4", "--num-vars", "2", "--tsteps", "1", "--stages", "2",
        "--checksum-freq", "2", "--max-refine-level", "1",
    ]
    assert main(argv) == 0
    serial = capsys.readouterr().out
    assert main(argv + ["--pdes-workers", "2"]) == 0
    partitioned = capsys.readouterr().out
    # Same simulation, same printed metrics — the worker count is a
    # host-side knob, not a model change.
    assert partitioned == serial
    assert main(argv + ["--pdes-workers", "2",
                        "--pdes-partition", "contiguous"]) == 0
    assert capsys.readouterr().out == serial


def test_run_rejects_bad_pdes_partition(capsys):
    with pytest.raises(SystemExit):
        main([
            "run", "--variant", "mpi_only", "--preset", "laptop",
            "--pdes-partition", "striped",
        ])


def test_run_tampi_with_paper_options(capsys):
    rc = main([
        "run", "--variant", "tampi_dataflow", "--preset", "laptop",
        "--nodes", "1", "--ranks-per-node", "2", "--root", "2", "2", "2",
        "--nx", "4", "--num-vars", "2", "--tsteps", "1", "--stages", "2",
        "--max-refine-level", "1", "--send-faces", "--separate-buffers",
        "--max-comm-tasks", "4",
    ])
    assert rc == 0
    assert "tampi_dataflow" in capsys.readouterr().out


def test_bench_table1_quick(capsys):
    rc = main(["bench", "table1", "--quick"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "tampi_dataflow" in out


def test_bench_weak_quick(capsys):
    rc = main(["bench", "weak", "--quick", "--nodes", "1", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "weak scaling" in out


def test_bench_weak_parallel_matches_serial_and_caches(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    argv = ["bench", "weak", "--quick", "--nodes", "1", "2",
            "--cache-dir", cache]
    assert main(argv + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert main(argv) == 0  # warm cache, serial
    warm = capsys.readouterr().out
    assert main(["bench", "weak", "--quick", "--nodes", "1", "2",
                 "--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert parallel == serial == warm


def test_sweep_command_prints_table(capsys, tmp_path):
    rc = main([
        "sweep", "--variants", "mpi_only", "tampi_dataflow",
        "--nodes", "1", "2", "--preset", "laptop", "--ranks-per-node", "2",
        "--root", "2", "2", "2", "--nx", "4", "--num-vars", "2",
        "--tsteps", "1", "--stages", "2", "--checksum-freq", "2",
        "--max-refine-level", "1", "--jobs", "2",
        "--cache-dir", str(tmp_path / "cache"),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sweep on laptop" in out
    assert "tampi_dataflow" in out and "mpi_only" in out
    assert "4 executed" in out


def test_run_hybrid_defaults_to_paper_ranks_per_node(capsys):
    """cmd_run and the driver resolve the same default (4, Table I)."""
    rc = main([
        "run", "--variant", "tampi_dataflow", "--preset", "laptop",
        "--nodes", "1", "--root", "2", "2", "2",
        "--nx", "4", "--num-vars", "2", "--tsteps", "1", "--stages", "2",
        "--checksum-freq", "2", "--max-refine-level", "1",
    ])
    assert rc == 0
    assert "1 nodes x 4 ranks" in capsys.readouterr().out


def test_help_lists_verify_subcommand(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    assert "verify" in capsys.readouterr().out


def test_verify_help_documents_flags(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["verify", "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    for flag in ("--update-goldens", "--seeds", "--goldens-dir", "--quick"):
        assert flag in out


def test_run_scheduler_choices_are_centralized(capsys):
    """The run parser must accept exactly repro.tasking.runtime.SCHEDULERS."""
    from repro.tasking.runtime import SCHEDULERS

    with pytest.raises(SystemExit):
        main(["run", "--variant", "mpi_only", "--scheduler", "nope"])
    for name in SCHEDULERS:
        assert name in ("locality", "fifo", "fuzz")
    with pytest.raises(SystemExit) as exc:
        main(["run", "--help"])
    assert exc.value.code == 0
    assert "fuzz" in capsys.readouterr().out


def test_run_check_access_flag(capsys):
    rc = main([
        "run", "--variant", "tampi_dataflow", "--preset", "laptop",
        "--nodes", "1", "--ranks-per-node", "2", "--root", "2", "2", "1",
        "--nx", "4", "--num-vars", "2", "--tsteps", "1", "--stages", "2",
        "--checksum-freq", "2", "--max-refine-level", "1", "--check-access",
    ])
    assert rc == 0
    assert "access check:     clean" in capsys.readouterr().out


def test_run_fuzz_scheduler_with_seed(capsys):
    rc = main([
        "run", "--variant", "tampi_dataflow", "--preset", "laptop",
        "--nodes", "1", "--ranks-per-node", "2", "--root", "2", "2", "1",
        "--nx", "4", "--num-vars", "2", "--tsteps", "1", "--stages", "2",
        "--checksum-freq", "2", "--max-refine-level", "1",
        "--scheduler", "fuzz", "--sched-seed", "7",
    ])
    assert rc == 0
    assert "tampi_dataflow" in capsys.readouterr().out


def _profile_argv(variant, json_path=None, extra=()):
    argv = [
        "profile", "--variant", variant, "--preset", "laptop",
        "--nodes", "1", "--ranks-per-node", "2", "--root", "2", "2", "1",
        "--nx", "4", "--num-vars", "2", "--tsteps", "2", "--stages", "2",
        "--checksum-freq", "2", "--max-refine-level", "1",
    ]
    if json_path is not None:
        argv += ["--json", str(json_path)]
    return argv + list(extra)


def test_profile_command_prints_summary(capsys):
    rc = main(_profile_argv("tampi_dataflow"))
    assert rc == 0
    out = capsys.readouterr().out
    assert "== profile: tampi_dataflow" in out
    assert "critical path" in out
    assert "busy fraction" in out


def test_profile_exports_and_report_compares(capsys, tmp_path):
    import json

    a_path = tmp_path / "mpi.json"
    b_path = tmp_path / "tampi.json"
    trace_path = tmp_path / "trace.json"
    csv_path = tmp_path / "metrics.csv"
    assert main(_profile_argv("mpi_only", a_path)) == 0
    assert main(_profile_argv(
        "tampi_dataflow", b_path,
        extra=["--chrome-trace", str(trace_path),
               "--metrics-csv", str(csv_path)],
    )) == 0
    capsys.readouterr()

    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"]
    assert csv_path.read_text().startswith("name,labels,")

    rc = main(["report", str(a_path), str(b_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "== variant comparison ==" in out
    assert "mpi_only" in out and "tampi_dataflow" in out
    assert "overlap" in out


def test_report_rejects_non_profile_json(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"not\": \"a profile\"}")
    with pytest.raises(SystemExit):
        main(["report", str(bad), str(bad)])


def test_profile_with_bounded_tracer_warns_on_drops(capsys):
    rc = main(_profile_argv(
        "tampi_dataflow", extra=["--trace-max-events", "10"]
    ))
    assert rc == 0
    out = capsys.readouterr().out
    assert "ring buffer dropped" in out


def _pipeline_argv(tmp_path, extra=()):
    return [
        "pipeline", "paper", "--quick",
        "--cache-dir", str(tmp_path / "cache"),
        "--stats-file", str(tmp_path / "stats.json"),
    ] + list(extra)


def test_pipeline_show_dag_dry_runs(capsys, tmp_path):
    rc = main(_pipeline_argv(tmp_path, ["--show-dag"]))
    assert rc == 0
    out = capsys.readouterr().out
    assert "paper-diamond-quick" in out
    assert "calibrate" in out and "fig4" in out and "fig5" in out
    assert "predicted makespan" in out
    assert "critical-path-first" in out
    # A dry run executes nothing and writes no stats.
    assert not (tmp_path / "stats.json").exists()


def test_pipeline_runs_caches_and_writes_stable_json(capsys, tmp_path):
    import json

    out1, out2 = tmp_path / "r1.json", tmp_path / "r2.json"
    rc = main(_pipeline_argv(tmp_path, ["--json", str(out1)]))
    assert rc == 0
    first = capsys.readouterr().out
    assert "== pipeline: paper-diamond-quick ==" in first
    assert "4 executed, 0 cached" in first
    assert (tmp_path / "stats.json").exists()

    rc = main(_pipeline_argv(tmp_path, ["--json", str(out2)]))
    assert rc == 0
    second = capsys.readouterr().out
    assert "0 executed, 4 cached" in second
    assert out1.read_bytes() == out2.read_bytes()
    doc = json.loads(out1.read_text())
    assert set(doc) == {"calibrate", "fig4", "fig5", "report"}
    assert "points" in doc["report"]


def test_pipeline_from_json_file(capsys, tmp_path):
    from repro.bench import paper_pipeline

    path = tmp_path / "pipe.json"
    path.write_text(paper_pipeline(quick=True).to_json())
    rc = main([
        "pipeline", "--file", str(path),
        "--cache-dir", str(tmp_path / "cache"), "--no-stats",
    ])
    assert rc == 0
    assert "paper-diamond-quick" in capsys.readouterr().out


def test_pipeline_requires_exactly_one_source(capsys, tmp_path):
    assert main(["pipeline", "--no-stats", "--no-cache"]) == 2
    err = capsys.readouterr().err
    assert "exactly one" in err


def test_pipeline_unknown_name_is_a_clean_error(capsys):
    assert main(["pipeline", "nope", "--no-stats", "--no-cache"]) == 2
    assert "unknown pipeline" in capsys.readouterr().err


def test_help_lists_pipeline_subcommand(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    assert "pipeline" in capsys.readouterr().out


def test_unknown_variant_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--variant", "nope"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


def test_telemetry_top_and_engine_report_commands(capsys, tmp_path):
    stream = tmp_path / "sweep.jsonl"
    argv = [
        "sweep", "--variants", "mpi_only", "tampi_dataflow",
        "--nodes", "1", "--preset", "laptop", "--ranks-per-node", "2",
        "--root", "2", "2", "2", "--nx", "4", "--num-vars", "2",
        "--tsteps", "1", "--stages", "2", "--checksum-freq", "2",
        "--max-refine-level", "1", "--jobs", "2",
        "--cache-dir", str(tmp_path / "cache"),  # cold by construction
        "--telemetry", str(stream),
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert stream.exists()

    trace = tmp_path / "engine.trace.json"
    digest = tmp_path / "digest.json"
    assert main(["engine-report", str(stream), "--chrome-trace",
                 str(trace), "--json", str(digest)]) == 0
    out = capsys.readouterr().out
    assert "worker utilization" in out
    assert trace.exists() and digest.exists()
    import json as _json
    doc = _json.loads(trace.read_text())
    assert all({"name", "ph", "pid", "tid"} <= e.keys()
               for e in doc["traceEvents"])

    assert main(["top", str(stream)]) == 0
    out = capsys.readouterr().out
    assert "finished 2/2" in out


def test_trend_command_with_baseline_dir(capsys, tmp_path):
    base = tmp_path / "base"
    cur = tmp_path / "cur"
    base.mkdir()
    cur.mkdir()
    (base / "BENCH_x.json").write_text('{"throughput": 100.0, "t": 1.0}')
    (cur / "BENCH_x.json").write_text('{"throughput": 50.0, "t": 1.0}')
    assert main(["trend", "--results-dir", str(cur),
                 "--baseline-dir", str(base)]) == 0
    assert "regression" in capsys.readouterr().out
    # --strict turns flagged regressions into a nonzero exit.
    assert main(["trend", "--results-dir", str(cur),
                 "--baseline-dir", str(base), "--strict"]) == 1


def test_trend_bad_baseline_dir_exits_2(capsys, tmp_path):
    cur = tmp_path / "cur"
    cur.mkdir()
    (cur / "BENCH_x.json").write_text('{"throughput": 50.0, "t": 1.0}')
    # Nonexistent baseline dir: usage error, not a traceback.
    assert main(["trend", "--results-dir", str(cur),
                 "--baseline-dir", str(tmp_path / "missing")]) == 2
    assert "not a directory" in capsys.readouterr().err
    # Existing but empty baseline dir (no BENCH_*.json): same treatment.
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["trend", "--results-dir", str(cur),
                 "--baseline-dir", str(empty)]) == 2
    assert "no BENCH_" in capsys.readouterr().err


# ----------------------------------------------------------------------
# tune
# ----------------------------------------------------------------------
TUNE_BASE = [
    "tune", "--variant", "tampi_dataflow", "--preset", "laptop",
    "--nodes", "1", "--root", "2", "2", "2",
    "--nx", "4", "--num-vars", "2", "--tsteps", "1", "--stages", "2",
    "--checksum-freq", "2", "--max-refine-level", "1", "--no-cache",
    "--no-stats",
]


def test_tune_requires_exactly_one_source(capsys):
    assert main(TUNE_BASE) == 2
    assert "exactly one tune source" in capsys.readouterr().err
    assert main(TUNE_BASE + ["--fig4", "--tune-rpn", "1", "2"]) == 2
    assert "exactly one tune source" in capsys.readouterr().err


def test_tune_run_style_ranks_and_reports(capsys, tmp_path):
    spec_json = tmp_path / "tune-spec.json"
    report_json = tmp_path / "tune-report.json"
    rc = main(TUNE_BASE + [
        "--tune-variants", "mpi_only", "tampi_dataflow",
        "--json", str(report_json), "--spec-json", str(spec_json),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "== tune:" in out
    assert "best vs baseline:" in out

    import json

    from repro.tune import TuneReport, TuneSpec

    tune = TuneSpec.from_dict(json.loads(spec_json.read_text()))
    assert tune.space == {"variant": ("mpi_only", "tampi_dataflow")}
    report = TuneReport.from_dict(json.loads(report_json.read_text()))
    assert report.fingerprint == tune.fingerprint()
    assert [e["rank"] for e in report.entries] == [1, 2]

    # The emitted spec re-runs through --file to the same report bytes.
    assert main(TUNE_BASE[:1] + [
        "--file", str(spec_json), "--no-cache", "--no-stats",
        "--json", str(tmp_path / "again.json"),
    ]) == 0
    capsys.readouterr()
    assert (tmp_path / "again.json").read_bytes() == (
        report_json.read_bytes()
    )


def test_tune_rejects_bad_axis_combination(capsys):
    rc = main(TUNE_BASE + ["--tune-rpn", "2", "2"])
    assert rc == 2
    assert "repeats" in capsys.readouterr().err

"""Smoke tests for the runnable examples (the fast ones).

The scaling and trace examples run for minutes and are exercised by the
benchmark suite instead; here we check that the quick examples execute
end-to-end and print what their docstrings promise.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "mpi_only" in out
    assert "tampi_dataflow" in out
    assert "checksum agreement" in out
    # The agreement lines report tiny relative differences.
    for line in out.splitlines():
        if "e-" in line and ("fork_join" in line or "tampi" in line):
            value = float(line.split()[-1])
            assert value < 1e-10


def test_mesh_anatomy_runs(capsys):
    run_example("mesh_anatomy.py")
    out = capsys.readouterr().out
    assert "epoch 0" in out
    assert "savings vs uniform" in out
    assert "imbalance after balancing" in out


def test_profile_report_runs(capsys):
    run_example("profile_report.py")
    out = capsys.readouterr().out
    assert "== profile: mpi_only" in out
    assert "== profile: tampi_dataflow" in out
    assert "== variant comparison ==" in out
    assert "profile report JSON round-trip: exact" in out
    assert "chrome trace written" in out


def test_examples_exist_and_have_docstrings():
    expected = {
        "quickstart.py",
        "single_sphere_study.py",
        "four_spheres_scaling.py",
        "trace_visualization.py",
        "custom_machine.py",
        "mesh_anatomy.py",
        "profile_report.py",
    }
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= found
    for name in expected:
        text = (EXAMPLES / name).read_text()
        assert text.startswith('#!/usr/bin/env python\n"""'), name
        assert "Run:" in text, name

"""RunResult round trips: typed stats, JSON serialization, equality."""

import json

import numpy as np
import pytest

from repro import AmrConfig, RunResult, RunSpec, run_simulation, sphere
from repro.core import CommStats, RuntimeStats


@pytest.fixture(scope="module")
def result():
    cfg = AmrConfig(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=2, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25,
                        move=(0.05, 0.0, 0.0)),),
    )
    return run_simulation(RunSpec(
        config=cfg, machine="laptop", variant="tampi_dataflow",
        ranks_per_node=2,
    ))


def test_stats_are_typed_and_serializable(result):
    assert isinstance(result.comm_stats, CommStats)
    assert result.comm_stats.messages > 0
    assert result.comm_stats.bytes_sent > 0
    assert all(isinstance(s, RuntimeStats) for s in result.runtime_stats)
    assert sum(s.tasks_executed for s in result.runtime_stats) > 0
    # The whole result must be plain-JSON representable.
    json.dumps(result.to_dict())


def test_round_trip_equality(result):
    again = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert again == result
    assert result == again


def test_round_trip_preserves_exact_floats(result):
    again = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert again.total_time == result.total_time
    assert again.flops == result.flops
    for (ta, ca, da), (tb, cb, db) in zip(result.checksums, again.checksums):
        assert ta == tb and da == db
        assert np.array_equal(np.asarray(ca), np.asarray(cb))
        assert cb.dtype == np.float64


def test_inequality_on_changed_field(result):
    other = RunResult.from_dict(result.to_dict())
    other.total_time += 1e-9
    assert other != result


def test_inequality_on_changed_checksum(result):
    other = RunResult.from_dict(result.to_dict())
    t, total, d = other.checksums[-1]
    other.checksums[-1] = (t, total + 1.0, d)
    assert other != result


def test_tracer_is_live_only(result):
    # tracer never serializes...
    assert "tracer" not in result.to_dict()
    # ...and never survives a round trip.
    again = RunResult.from_dict(result.to_dict())
    assert again.tracer is None


def test_equality_ignores_tracer(result):
    cfg = AmrConfig(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=2, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25,
                        move=(0.05, 0.0, 0.0)),),
    )
    traced = run_simulation(RunSpec(
        config=cfg, machine="laptop", variant="tampi_dataflow",
        ranks_per_node=2, trace=True,
    ))
    assert traced.tracer is not None
    assert RunResult.from_dict(traced.to_dict()) == traced


def test_derived_metrics_survive_round_trip(result):
    again = RunResult.from_dict(result.to_dict())
    assert again.gflops == result.gflops
    assert again.non_refine_time == result.non_refine_time

"""Focused tests on refinement coordination and the ACK block exchange."""

import numpy as np
import pytest

from repro import AmrConfig, RunSpec, laptop, run_simulation, sphere


def base_cfg(**kw):
    d = dict(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2,
        num_tsteps=4, stages_per_ts=2, refine_freq=1, checksum_freq=0,
        max_refine_level=2,
        objects=(
            sphere(center=(0.2, 0.3, 0.3), radius=0.2,
                   move=(0.12, 0.05, 0.05)),
        ),
    )
    d.update(kw)
    return AmrConfig(**d)


def run(variant="tampi_dataflow", cfg=None, **kw):
    return run_simulation(RunSpec(
        config=cfg or base_cfg(), machine=laptop(), variant=variant,
        num_nodes=1, ranks_per_node=2, **kw,
    ))


def test_refinement_runs_every_refine_freq():
    res = run()
    # Initial refinement + after ts 1..3 (not after the last).
    assert res.refine_time > 0
    assert res.num_blocks > 8


def test_moving_object_changes_refinement_over_time():
    """As the sphere moves, different regions refine; block totals move."""
    short = run(cfg=base_cfg(num_tsteps=2))
    long = run(cfg=base_cfg(num_tsteps=6))
    assert short.num_blocks != long.num_blocks or (
        short.num_blocks > 8 and long.num_blocks > 8
    )


def test_refinement_disabled_keeps_mesh_static():
    cfg = base_cfg(refine_freq=0, max_refine_level=0, objects=())
    res = run(cfg=cfg)
    assert res.num_blocks == 8
    assert res.refine_time == 0.0


def test_coarsening_returns_blocks_when_object_leaves():
    """The sphere exits the domain; refined regions consolidate back."""
    cfg = base_cfg(
        num_tsteps=8,
        objects=(
            sphere(center=(0.25, 0.25, 0.25), radius=0.15,
                   move=(0.35, 0.35, 0.35)),
        ),
    )
    res = run(cfg=cfg)
    # By the end the object is far outside the unit cube; the mesh has
    # coarsened back to (or near) the root mesh.
    assert res.num_blocks <= 16


def test_exchange_conserves_checksum_across_rebalances():
    cfg = base_cfg(checksum_freq=2, num_tsteps=4)
    res = run(cfg=cfg)
    assert len(res.checksums) == 4
    for _t, total, _d in res.checksums:
        assert np.all(np.isfinite(total))


@pytest.mark.parametrize("capacity", [0, 200, 100])
def test_capacity_bounds_do_not_change_results(capacity):
    cfg = base_cfg(checksum_freq=4, max_blocks_per_rank=capacity)
    res = run(cfg=cfg)
    free = run(cfg=base_cfg(checksum_freq=4))
    assert res.num_blocks == free.num_blocks
    for (_, a, _), (_, b, _) in zip(res.checksums, free.checksums):
        assert np.max(np.abs(a - b) / np.abs(a)) < 1e-12


def test_capacity_exchange_slower_than_unlimited():
    """Deferred moves require extra protocol rounds (more time)."""
    tight = run(cfg=base_cfg(max_blocks_per_rank=110))
    free = run()
    assert tight.total_time >= free.total_time


def test_refinement_identical_across_variants():
    """All variants apply the same refinement plans: same final mesh."""
    per_variant = {}
    for variant in ("mpi_only", "fork_join", "tampi_dataflow"):
        if variant == "mpi_only":
            cfg = base_cfg(npx=2, npy=2, npz=1, init_x=1, init_y=1,
                           init_z=2)
            res = run_simulation(RunSpec(
                config=cfg, machine=laptop(), variant=variant,
                num_nodes=1, ranks_per_node=4,
            ))
        else:
            res = run(variant)
        per_variant[variant] = res.num_blocks
    assert len(set(per_variant.values())) == 1, per_variant


def test_imbalance_bounded_after_balancing():
    res = run(cfg=base_cfg(num_tsteps=6))
    # SFC partition keeps per-rank counts within one block of the mean.
    assert res.imbalance <= 1.5

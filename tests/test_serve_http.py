"""End-to-end HTTP acceptance tests for ``repro.serve``.

Covers the PR's acceptance scenario: concurrent clients sharing one
execution with byte-identical results, quota backpressure as real 429 +
Retry-After responses, cancellation, metrics schema, SSE streaming, the
CLI client subcommands, restart-mid-queue journal recovery, and
fingerprint neutrality of the serving layer.
"""

import json
import os
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro import AmrConfig, RunSpec, run_simulation, sphere
from repro.cli import main
from repro.exec import ResultCache, SweepEngine, run_spec_dict
from repro.serve import Broker, JobStore, ServeClient, ServeError, ServeServer


def small_spec(variant="mpi_only", **overrides):
    cfg_kwargs = dict(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    cfg_kwargs.update(overrides)
    return RunSpec(
        config=AmrConfig(**cfg_kwargs), machine="laptop",
        variant=variant, ranks_per_node=2,
    )


def _marking_runner(spec_dict):
    result = run_spec_dict(spec_dict)
    fp = RunSpec.from_dict(spec_dict).fingerprint()
    marker_dir = Path(os.environ["REPRO_EXEC_TEST_DIR"])
    (marker_dir / f"exec-{fp}-{os.getpid()}-{time.monotonic_ns()}").touch()
    return result


def _holding_runner(spec_dict):
    hold = Path(os.environ["REPRO_EXEC_TEST_DIR"]) / "HOLD"
    while hold.exists():
        time.sleep(0.02)
    return _marking_runner(spec_dict)


def executions(marker_dir, fingerprint) -> int:
    return len(list(Path(marker_dir).glob(f"exec-{fingerprint}-*")))


class LiveServer:
    """A broker + ServeServer on an ephemeral port, torn down cleanly."""

    def __init__(self, tmp_path, *, runner=_marking_runner, jobs=2,
                 telemetry=None, **broker_kwargs):
        self.engine = SweepEngine(
            jobs=jobs, cache=ResultCache(tmp_path / "cache"),
            runner=runner, drain_timeout=5.0, telemetry=telemetry,
        )
        broker_kwargs.setdefault("quota_rate", 1000.0)
        broker_kwargs.setdefault("quota_burst", 1000)
        self.broker = Broker(
            engine=self.engine, store=JobStore(tmp_path / "serve"),
            poll_interval=0.01, **broker_kwargs,
        )
        self.server = ServeServer(("127.0.0.1", 0), self.broker)
        self.url = "http://127.0.0.1:%d" % self.server.server_address[1]
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05}, daemon=True,
        )
        self._thread.start()
        self.broker.start()

    def client(self, **kwargs) -> ServeClient:
        return ServeClient(self.url, **kwargs)

    def stop(self, *, drain_timeout=5.0):
        self.server.shutdown()
        self.server.server_close()
        self.broker.shutdown(drain_timeout=drain_timeout)
        self._thread.join(timeout=5)

    def crash(self):
        """Tear down with no drain and no journal cleanup."""
        self.server.shutdown()
        self.server.server_close()
        self.broker._stop.set()
        for thread in self.broker._threads:
            thread.join(timeout=5)
        self.broker.session.close()
        self.broker.store.close()
        self._thread.join(timeout=5)


@pytest.fixture
def marker_dir(tmp_path, monkeypatch):
    d = tmp_path / "markers"
    d.mkdir()
    monkeypatch.setenv("REPRO_EXEC_TEST_DIR", str(d))
    return d


# ----------------------------------------------------------------------
# The acceptance scenario
# ----------------------------------------------------------------------
def test_concurrent_clients_share_one_execution(tmp_path, marker_dir):
    live = LiveServer(tmp_path)
    try:
        spec = small_spec()
        responses, errors = [], []

        def one_client(tenant):
            try:
                client = live.client()
                body = client.submit(spec.to_dict(), tenant=tenant)
                view = client.wait(body["job"]["id"], timeout=60)
                assert view["state"] == "done"
                result = client.result(body["job"]["id"])["result"]
                responses.append((body["mode"], result))
            except Exception as exc:  # pragma: no cover - debug aid
                errors.append(exc)

        threads = [
            threading.Thread(target=one_client, args=(f"tenant{i}",))
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(responses) == 3
        # Exactly one execution happened, whichever client won the race.
        assert executions(marker_dir, spec.fingerprint()) == 1
        assert sum(1 for mode, _ in responses if mode == "new") == 1
        # All three clients read byte-identical RunResult JSON.
        blobs = {
            json.dumps(result, sort_keys=True) for _, result in responses
        }
        assert len(blobs) == 1
    finally:
        live.stop()


def test_over_quota_tenant_gets_429_with_retry_after(
    tmp_path, marker_dir,
):
    live = LiveServer(tmp_path, quota_rate=0.001, quota_burst=2)
    try:
        client = live.client()
        for i in range(2):
            client.submit(
                small_spec(checksum_freq=2 + i).to_dict(),
                tenant="greedy",
            )
        with pytest.raises(ServeError) as err:
            client.submit(
                small_spec(checksum_freq=9).to_dict(), tenant="greedy",
            )
        assert err.value.code == "quota_exceeded"
        assert err.value.http_status == 429
        assert err.value.retry_after >= 1
        assert err.value.exit_code == 1
        # An under-quota tenant is unaffected.
        ok = client.submit(
            small_spec(checksum_freq=9).to_dict(), tenant="patient",
        )
        assert ok["mode"] == "new"
    finally:
        live.stop()


def test_cancel_over_http(tmp_path, marker_dir):
    (marker_dir / "HOLD").touch()
    live = LiveServer(tmp_path, runner=_holding_runner, jobs=1)
    try:
        client = live.client()
        blocker = client.submit(small_spec(checksum_freq=2).to_dict())
        queued = client.submit(small_spec(checksum_freq=3).to_dict())
        view = client.cancel(queued["job"]["id"])["job"]
        assert view["state"] == "canceled"
        with pytest.raises(ServeError) as err:
            client.result(queued["job"]["id"])
        assert err.value.code == "conflict"
        (marker_dir / "HOLD").unlink()
        done = client.wait(blocker["job"]["id"], timeout=60)
        assert done["state"] == "done"
    finally:
        live.stop()


def test_metrics_and_queue_schema_over_http(tmp_path, marker_dir):
    live = LiveServer(tmp_path)
    try:
        client = live.client()
        body = client.submit(small_spec().to_dict(), tenant="alice")
        client.wait(body["job"]["id"], timeout=60)
        metrics = client.metrics()
        assert metrics["v"] == 1
        assert set(metrics) >= {
            "uptime", "jobs", "executions", "cache", "queue", "engine",
        }
        assert metrics["jobs"]["by_state"]["done"] == 1
        assert metrics["jobs"]["by_tenant"]["alice"]["submitted"] == 1
        assert set(metrics["executions"]) == {
            "started", "completed", "coalesced_attaches",
            "cache_fast_hits",
        }
        assert set(metrics["queue"]) == {
            "depth", "cap", "wait_histogram_ms",
        }
        assert 0.0 <= metrics["engine"]["utilization"] <= 1.0
        queue_view = client.queue()
        assert set(queue_view) >= {"queued", "running", "depth", "cap"}
        # Unknown jobs 404 with the typed not_found code.
        with pytest.raises(ServeError) as err:
            client.job("jdoesnotexist")
        assert err.value.code == "not_found"
        assert err.value.http_status == 404
    finally:
        live.stop()


def test_sse_event_stream(tmp_path, marker_dir):
    live = LiveServer(tmp_path)
    try:
        client = live.client()
        events = []
        seen_terminal = threading.Event()

        def listen():
            for event in client.events(timeout=30):
                events.append(event)
                if event["event"] in ("done", "failed"):
                    seen_terminal.set()
                    return

        listener = threading.Thread(target=listen, daemon=True)
        listener.start()
        time.sleep(0.2)  # let the subscription register
        body = client.submit(small_spec().to_dict(), tenant="alice")
        client.wait(body["job"]["id"], timeout=60)
        assert seen_terminal.wait(timeout=30)
        kinds = [e["event"] for e in events]
        assert "submitted" in kinds
        assert "done" in kinds
        submitted = next(e for e in events if e["event"] == "submitted")
        assert submitted["mode"] == "new"
        assert submitted["job"]["tenant"] == "alice"
    finally:
        live.stop()


def test_restart_mid_queue_recovers_without_duplicates(
    tmp_path, marker_dir,
):
    (marker_dir / "HOLD").touch()
    live = LiveServer(tmp_path, runner=_holding_runner, jobs=1)
    client = live.client()
    spec_a, spec_b = small_spec(), small_spec(variant="fork_join")
    ids = [
        client.submit(spec_a.to_dict(), tenant="a")["job"]["id"],
        client.submit(spec_b.to_dict(), tenant="b")["job"]["id"],
        client.submit(spec_a.to_dict(), tenant="c")["job"]["id"],
    ]
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if client.job(ids[0])["job"]["state"] == "running":
            break
        time.sleep(0.05)
    live.crash()

    (marker_dir / "HOLD").unlink()
    live2 = LiveServer(tmp_path)
    try:
        client2 = live2.client()
        for job_id in ids:
            view = client2.wait(job_id, timeout=60)
            assert view["state"] == "done"
        # The killed first attempt never completed; after recovery each
        # unique fingerprint executed exactly once.
        assert executions(marker_dir, spec_a.fingerprint()) == 1
        assert executions(marker_dir, spec_b.fingerprint()) == 1
        r1 = client2.result(ids[0])["result"]
        r3 = client2.result(ids[2])["result"]
        assert json.dumps(r1, sort_keys=True) == json.dumps(
            r3, sort_keys=True
        )
    finally:
        live2.stop()


# ----------------------------------------------------------------------
# Fingerprint neutrality (acceptance: serving must not move results)
# ----------------------------------------------------------------------
def test_serving_layer_is_fingerprint_neutral(tmp_path, marker_dir):
    spec = small_spec()
    # Reference: the same spec executed entirely outside the service.
    local = run_simulation(spec).to_dict()

    live = LiveServer(tmp_path)
    try:
        client = live.client()
        body = client.submit(spec.to_dict(), tenant="alice", priority=3.0)
        client.wait(body["job"]["id"], timeout=60)
        served = client.result(body["job"]["id"])["result"]
        # Byte-identical result JSON: tenant, priority, job ids, and the
        # transport leave the simulation untouched.
        assert json.dumps(served, sort_keys=True) == json.dumps(
            local, sort_keys=True
        )
        # The service keyed the shared cache with the spec's own
        # fingerprint — a later CLI run would hit this exact entry.
        assert body["job"]["fingerprint"] == spec.fingerprint()
        cached = live.engine.cache.get(spec.fingerprint())
        assert cached is not None
        assert json.dumps(cached.to_dict(), sort_keys=True) == json.dumps(
            local, sort_keys=True
        )
    finally:
        live.stop()


def test_submit_spec_dict_unchanged_by_transport(tmp_path, marker_dir):
    # RunSpec.to_dict round-trips through JSON + server parse untouched.
    spec = small_spec()
    wire = json.loads(json.dumps(spec.to_dict()))
    assert RunSpec.from_dict(wire) == spec
    assert RunSpec.from_dict(wire).fingerprint() == spec.fingerprint()


# ----------------------------------------------------------------------
# CLI client subcommands + telemetry endpoint
# ----------------------------------------------------------------------
def test_cli_submit_status_result_cancel(
    tmp_path, marker_dir, capsys,
):
    live = LiveServer(tmp_path)
    try:
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(small_spec().to_dict()))
        rc = main([
            "submit", "--server", live.url, "--file", str(spec_file),
            "--tenant", "alice", "--wait",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mode: new" in out
        job_id = out.split()[1].rstrip(":")

        # status with a job id prints the job view JSON
        assert main(["status", job_id, "--server", live.url]) == 0
        view = json.loads(capsys.readouterr().out)
        assert view["state"] == "done"
        # status without a job id prints the queue + metrics overview
        assert main(["status", "--server", live.url]) == 0
        overview = json.loads(capsys.readouterr().out)
        assert overview["metrics"]["jobs"]["total"] == 1

        assert main(["result", job_id, "--server", live.url]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["total_time"] > 0

        # A duplicate CLI submit is served from cache, zero executions.
        rc = main([
            "submit", "--server", live.url, "--file", str(spec_file),
            "--tenant", "bob",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mode: cached" in out

        # cancel of a terminal job maps the conflict to exit 1.
        assert main(["cancel", job_id, "--server", live.url]) == 1
        capsys.readouterr()
        # unknown job id -> not_found -> exit 2.
        assert main(["result", "jnope", "--server", live.url]) == 2
        capsys.readouterr()
    finally:
        live.stop()


def test_cli_submit_run_style_args(tmp_path, marker_dir, capsys):
    live = LiveServer(tmp_path)
    try:
        rc = main([
            "submit", "--server", live.url, "--variant", "mpi_only",
            "--preset", "laptop", "--ranks-per-node", "2",
            "--root", "1", "2", "2", "--nx", "4", "--num-vars", "2",
            "--tsteps", "1", "--stages", "2", "--checksum-freq", "2",
            "--max-refine-level", "1", "--wait",
        ])
        assert rc == 0
        assert "job " in capsys.readouterr().out
        # Exactly one spec source is enforced (exit 2 on ambiguity).
        rc = main([
            "submit", "--server", live.url, "--variant", "mpi_only",
            "--file", str(tmp_path / "nope.json"),
        ])
        assert rc == 2
    finally:
        live.stop()


def test_telemetry_endpoint_feeds_top(tmp_path, marker_dir, capsys):
    from repro.obs.live import read_stream
    from repro.obs.telemetry import TelemetryBus

    stream = tmp_path / "serve.jsonl"
    live = LiveServer(tmp_path, telemetry=TelemetryBus(stream))
    try:
        client = live.client()
        body = client.submit(small_spec().to_dict(), tenant="alice")
        client.wait(body["job"]["id"], timeout=60)
        # The raw endpoint serves the JSONL file itself.
        with urllib.request.urlopen(
            f"{live.url}/v1/telemetry", timeout=10
        ) as response:
            raw = response.read().decode("utf-8")
        assert any(
            json.loads(line)["type"] == "serve_submit"
            for line in raw.splitlines() if line
        )
        # read_stream accepts the server URL directly (top --follow URL).
        report = read_stream(live.url)
        assert any(
            r["type"] == "job_done" for r in report.records
        )
    finally:
        live.stop(drain_timeout=5.0)
    # After shutdown the stream carries the terminal serve_stop record.
    lines = [json.loads(l) for l in stream.read_text().splitlines()]
    assert any(r["type"] == "serve_stop" for r in lines)
    from repro.obs.telemetry import validate_file

    assert validate_file(stream) == len(lines)

#!/usr/bin/env python
"""The four-spheres input (Vaughan et al.): weak scaling of the variants.

Reproduces the structure of the paper's Fig 4 at a reduced scale: four
spheres cross the mesh along the X axis while the problem doubles with the
node count (one initial block per MPI-only rank).  Prints throughput,
speedup of each hybrid over MPI-only, and parallel efficiency.

Run:  python examples/four_spheres_scaling.py [max_nodes]
"""

import sys

from repro.bench import weak_scaling


def main():
    max_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    node_counts = [n for n in (1, 2, 4, 8, 16, 32) if n <= max_nodes]

    result = weak_scaling(node_counts=tuple(node_counts))
    print(result.text)

    print(f"\n{'nodes':>5} {'tampi/mpi':>10} {'fj/mpi':>7} "
          f"{'eff(tampi)':>10} {'eff(mpi)':>9} {'effNR(tampi)':>12}")
    for n in node_counts:
        print(
            f"{n:>5} "
            f"{result.speedup_vs('tampi_dataflow', 'mpi_only', n):>10.3f} "
            f"{result.speedup_vs('fork_join', 'mpi_only', n):>7.3f} "
            f"{result.efficiency('tampi_dataflow', n):>10.3f} "
            f"{result.efficiency('mpi_only', n):>9.3f} "
            f"{result.efficiency('tampi_dataflow', n, non_refine=True):>12.3f}"
        )
    print(
        "\npaper shape: the TAMPI+OSS advantage over MPI-only grows with "
        "scale\n(1.5x at 128-256 real nodes); fork-join hovers near parity "
        "and falls off;\nNR efficiency stays above total efficiency."
    )


if __name__ == "__main__":
    main()

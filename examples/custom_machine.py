#!/usr/bin/env python
"""Exploring what-if machines: how hardware parameters move the result.

The reproduction's machine model is fully parametric, so questions the
paper could not ask of MareNostrum4 are one-liners here:

  * What if the network were 4x slower? (data-flow overlap matters more)
  * What if tasks were free? (the granularity limit disappears)
  * What if there were no cache-locality IPC boost? (one of the paper's
    four explanations, isolated)

Run:  python examples/custom_machine.py
"""

import dataclasses

from repro import RunSpec, marenostrum4_scaled, run_simulation
from repro.bench import TAMPI_OPTS, build_config, four_spheres
from repro.machine import MachineSpec


def run_pair(spec, label, cost_overrides=None):
    num_nodes = 4
    results = {}
    for variant in ("mpi_only", "tampi_dataflow"):
        rpn = 8 if variant == "mpi_only" else 2
        opts = TAMPI_OPTS if variant == "tampi_dataflow" else {}
        cfg = build_config(
            num_nodes * rpn, (4, 4, 2), four_spheres(2),
            num_tsteps=2, stages_per_ts=8, refine_freq=1,
            checksum_freq=8, max_refine_level=2, **opts,
        )
        results[variant] = run_simulation(RunSpec(
            config=cfg, machine=spec, variant=variant, num_nodes=num_nodes,
            ranks_per_node=rpn, cost_overrides=cost_overrides,
        ))
    ratio = (
        results["tampi_dataflow"].gflops / results["mpi_only"].gflops
    )
    print(f"{label:<38} mpi={results['mpi_only'].gflops:6.1f} GF  "
          f"tampi={results['tampi_dataflow'].gflops:6.1f} GF  "
          f"tampi/mpi={ratio:.3f}")
    return ratio


def main():
    base = marenostrum4_scaled(8)
    print("TAMPI+OSS vs MPI-only on 4 scaled nodes under machine what-ifs\n")

    run_pair(base, "baseline")

    slow_net = MachineSpec(
        node=base.node,
        network=dataclasses.replace(
            base.network,
            bandwidth_inter=base.network.bandwidth_inter / 4,
            latency_inter=base.network.latency_inter * 4,
        ),
        cost=base.cost,
        name="slow-network",
    )
    run_pair(slow_net, "4x slower network (overlap matters)")

    run_pair(
        base,
        "no locality IPC boost (ablated)",
        cost_overrides={"locality_ipc_boost": 1.0},
    )

    run_pair(
        base,
        "free tasking runtime (no overheads)",
        cost_overrides={
            "task_spawn_overhead": 0.0,
            "task_dispatch_overhead": 0.0,
        },
    )

    run_pair(
        base,
        "noiseless machine (no OS jitter)",
        cost_overrides={"noise_amplitude": 0.0, "noise_spike_rate": 0.0},
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Mesh anatomy: watch the AMR mesh evolve and quantify its savings.

Steps a single-sphere problem through several refinement epochs and prints
the mesh statistics after each: level histogram, the fraction of blocks a
uniform grid would need (the AMR savings the paper's introduction
motivates), cross-level face traffic, and the per-rank distribution —
comparing the SFC and RCB load balancers.

Run:  python examples/mesh_anatomy.py
"""

from repro.amr import (
    AmrConfig,
    MeshStructure,
    MovingObject,
    apply_plan,
    max_imbalance,
    mesh_report,
    plan_moves,
    plan_partition,
    plan_partition_rcb,
    plan_refinement,
    sphere,
)


def main():
    cfg = AmrConfig(
        npx=2, npy=2, npz=2, init_x=2, init_y=2, init_z=2,
        nx=8, ny=8, nz=8, num_vars=8, max_refine_level=3,
    )
    structure = MeshStructure(cfg)
    objects = [
        MovingObject(
            sphere(center=(0.2, 0.2, 0.2), radius=0.18,
                   move=(0.1, 0.1, 0.1))
        )
    ]

    for epoch in range(4):
        plan = plan_refinement(structure, objects)
        apply_plan(structure, plan)
        assert structure.check_cover() and structure.check_two_to_one()

        print(f"=== epoch {epoch}: refined {len(plan.refine)}, "
              f"coarsened {len(plan.coarsen_parents)} groups ===")
        print(mesh_report(structure).render())

        # Rebalance and compare the two partitioners.
        for name, partitioner in (
            ("sfc", plan_partition),
            ("rcb", plan_partition_rcb),
        ):
            target = partitioner(structure, cfg.num_ranks)
            moves = plan_moves(structure, target)
            print(f"  {name}: {len(moves)} block moves needed")
        # Apply the SFC partition (the library default).
        for bid, rank in plan_partition(structure, cfg.num_ranks).items():
            structure.set_owner(bid, rank)
        print(f"  imbalance after balancing: {max_imbalance(structure):.3f}")
        print()

        objects[0].advance(1)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Profile two variants and explain the difference, end to end.

Runs the MPI-only reference and the TAMPI+OmpSs-2 data-flow port with
``RunSpec(profile=True)``, prints each run's observability summary
(busy fraction, critical-path composition, idle-gap taxonomy), then the
side-by-side comparison — the quantitative form of the paper's Fig 2 vs
Fig 3 contrast: the data-flow variant overlaps communication-phase tasks
with stencil tasks, while MPI-only alternates compute with blocking-MPI
windows by construction.  Also demonstrates the exporters by writing a
Perfetto-loadable Chrome trace and a metrics CSV to a temp directory,
and that the ProfileReport survives a JSON round-trip (it rides inside
cached ``RunResult``s).

Run:  python examples/profile_report.py
"""

import json
import tempfile
from pathlib import Path

from repro import AmrConfig, run_simulation, sphere
from repro.core import RunSpec
from repro.obs import (
    ProfileReport,
    ascii_summary,
    compare_reports,
    metrics_csv,
    write_chrome_trace,
)


def make_spec(variant):
    # Same root mesh for both variants; MPI-only fills the 4-core laptop
    # node with 4 ranks, the data-flow hybrid runs 2 ranks x 2 cores.
    objects = (
        sphere(center=(0.3, 0.3, 0.3), radius=0.25, move=(0.05, 0.05, 0.0)),
    )
    if variant == "mpi_only":
        grid = dict(npx=2, npy=2, npz=1, init_x=1, init_y=1, init_z=2)
        rpn = 4
    else:
        grid = dict(npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2)
        rpn = 2
    cfg = AmrConfig(
        nx=4, ny=4, nz=4, num_vars=4,
        num_tsteps=4, stages_per_ts=4,
        refine_freq=2, checksum_freq=4, max_refine_level=2,
        objects=objects, **grid,
    )
    return RunSpec(
        config=cfg, machine="laptop", variant=variant,
        num_nodes=1, ranks_per_node=rpn, profile=True,
    )


def main():
    results = {}
    for variant in ("mpi_only", "tampi_dataflow"):
        res = run_simulation(make_spec(variant))
        results[variant] = res
        print(ascii_summary(res.profile, top=5))

    # The side-by-side report (what `miniamr-sim report a.json b.json`
    # prints for two saved profiles).
    a = results["mpi_only"].profile
    b = results["tampi_dataflow"].profile
    print(compare_reports(a, b))

    # Exporters: a Perfetto/chrome://tracing trace and the metrics CSV.
    outdir = Path(tempfile.mkdtemp(prefix="miniamr-profile-"))
    n = write_chrome_trace(
        results["tampi_dataflow"].profiler,
        outdir / "tampi.trace.json",
        variant="tampi_dataflow",
    )
    (outdir / "tampi.metrics.csv").write_text(metrics_csv(b))
    print(f"chrome trace written: {outdir / 'tampi.trace.json'} "
          f"({n} events; load in Perfetto or chrome://tracing)")
    print(f"metrics CSV written:  {outdir / 'tampi.metrics.csv'}")

    # The report is plain data: it survives JSON exactly, which is what
    # lets profiled results flow through the sweep engine's cache.
    rehydrated = ProfileReport.from_dict(json.loads(json.dumps(b.to_dict())))
    assert rehydrated == b
    print("profile report JSON round-trip: exact")

    print(
        f"\noverlap fraction: mpi_only {a.overlap_fraction:.3f} vs "
        f"tampi_dataflow {b.overlap_fraction:.3f} — the data-flow port "
        "runs communication tasks while stencils compute."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Trace a run and render a Paraver-style timeline (paper Figs 1-3).

Runs MPI-only and TAMPI+OSS on 2 simulated nodes with tracing enabled,
writes Paraver ``.prv``/``.pcf`` files, renders ASCII timelines of the
TAMPI+OSS cores, and prints the quantitative analyses behind the figures:
MPI-call time breakdown (Fig 2's Waitany dominance), core utilization and
idle gaps (Fig 3's density), and the non-refinement speedup (Fig 1).

Run:  python examples/trace_visualization.py [output_dir]
"""

import sys
from pathlib import Path

from repro import RunSpec, marenostrum4, run_simulation
from repro.bench import TAMPI_OPTS, build_config, four_spheres
from repro.trace import (
    core_utilization,
    legend,
    mpi_time_by_call,
    render_ascii,
    unpack_follows_gap_fraction,
    write_pcf,
    write_prv,
)


def main():
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    outdir.mkdir(parents=True, exist_ok=True)
    spec = marenostrum4()
    num_nodes = 2
    tsteps = 2
    root = (8, 4, 3)  # one root block per MPI-only rank (96)

    results = {}
    for variant, rpn in (("mpi_only", 48), ("tampi_dataflow", 4)):
        opts = TAMPI_OPTS if variant == "tampi_dataflow" else {}
        cfg = build_config(
            num_nodes * rpn, root, four_spheres(tsteps),
            num_tsteps=tsteps, stages_per_ts=4,
            refine_freq=2, checksum_freq=4, max_refine_level=1, **opts,
        )
        res = run_simulation(RunSpec(
            config=cfg, machine=spec, variant=variant,
            num_nodes=num_nodes, ranks_per_node=rpn, trace=True,
        ))
        results[variant] = res
        prv = outdir / f"{variant}.prv"
        write_prv(res.tracer, prv, cfg.num_ranks, res.total_time)
        write_pcf(outdir / f"{variant}.pcf")
        print(f"{variant}: total={res.total_time:.4f}s "
              f"refine={res.refine_time:.4f}s -> trace {prv}")

    mpi = results["mpi_only"]
    tampi = results["tampi_dataflow"]

    print("\n--- Fig 1: phase layout -------------------------------------")
    print(f"non-refinement speedup TAMPI+OSS vs MPI-only: "
          f"{mpi.non_refine_time / tampi.non_refine_time:.2f}x "
          f"(paper: ~1.3x)")

    print("\n--- Fig 2: MPI-only call-time breakdown (rank 0) -------------")
    for name, t in sorted(
        mpi_time_by_call(mpi.tracer, rank=0).items(),
        key=lambda kv: -kv[1],
    ):
        print(f"  {name:<10} {t * 1e3:8.3f} ms")

    print("\n--- Fig 3: TAMPI+OSS core density ----------------------------")
    window = (tampi.total_time * 0.3, tampi.total_time * 0.7)
    report = core_utilization(tampi.tracer, 0, 12, *window)
    print(f"  busy fraction (mid-run window): {report.busy_fraction:.2f}")
    print(f"  largest idle gap: {report.max_gap * 1e3:.3f} ms "
          f"(paper: gaps under ~3 ms)")
    frac = unpack_follows_gap_fraction(tampi.tracer, 0, gap_min=1e-5)
    print(f"  gaps followed by unpack/intra tasks: {frac:.0%}")

    print("\n--- ASCII timeline (TAMPI+OSS, rank 0, cores 0-11) ------------")
    rows = [(0, c) for c in range(12)]
    print(render_ascii(tampi.tracer, rows, *window, width=96))
    print(legend())


if __name__ == "__main__":
    main()

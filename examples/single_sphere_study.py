#!/usr/bin/env python
"""The single-sphere input (Rico et al.): ranks-per-node configuration.

Reproduces the structure of the paper's Table I at a reduced scale: a big
sphere enters the mesh from a lower corner (imbalancing the early
timesteps) while the two hybrid variants run with different ranks-per-node
configurations on 4 simulated MareNostrum4-like nodes (48 cores, 2 NUMA
domains each).

Things to observe in the output (the paper's findings):
  * 1 rank/node is the worst configuration — the rank's threads span both
    NUMA domains;
  * the fork-join hybrid improves monotonically with more ranks/node
    (its refinement work parallelizes via rank count, not threads);
  * TAMPI+OSS is best at 2-4 ranks/node and its refinement time is roughly
    half the fork-join's.

Run:  python examples/single_sphere_study.py
"""

from repro import RunSpec, marenostrum4, run_simulation
from repro.bench import TAMPI_OPTS, build_config, single_sphere


def main():
    spec = marenostrum4()
    num_nodes = 4
    root = (8, 4, 4)  # shared root mesh for every configuration
    tsteps = 2

    print(f"machine: {spec.name} ({spec.node.cores_per_node} cores/node, "
          f"{spec.node.sockets_per_node} NUMA domains), {num_nodes} nodes")
    print(f"{'ranks/node':>10} {'variant':<16} {'total(ms)':>10} "
          f"{'refine(ms)':>11} {'no-refine(ms)':>14} {'numa-span':>9}")

    for variant in ("fork_join", "tampi_dataflow"):
        for rpn in (1, 2, 4, 8, 16):
            opts = TAMPI_OPTS if variant == "tampi_dataflow" else {}
            cfg = build_config(
                num_nodes * rpn, root, single_sphere(tsteps),
                nx=12, num_vars=24, num_tsteps=tsteps, stages_per_ts=6,
                refine_freq=1, checksum_freq=6, max_refine_level=2, **opts,
            )
            res = run_simulation(RunSpec(
                config=cfg, machine=spec, variant=variant,
                num_nodes=num_nodes, ranks_per_node=rpn,
            ))
            spans = spec.machine(num_nodes, rpn).placement(0).spans_numa
            print(
                f"{rpn:>10} {variant:<16} {res.total_time * 1e3:>10.2f} "
                f"{res.refine_time * 1e3:>11.2f} "
                f"{res.non_refine_time * 1e3:>14.2f} "
                f"{'yes' if spans else 'no':>9}"
            )


if __name__ == "__main__":
    main()

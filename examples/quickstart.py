#!/usr/bin/env python
"""Quickstart: run miniAMR on a simulated cluster with all three variants.

Simulates a small AMR problem (a sphere moving through the unit cube) on
one 4-core node and compares the MPI-only reference, the MPI+OpenMP
fork-join hybrid, and the TAMPI+OmpSs-2 data-flow port.  All three compute
identical physics — the global checksums agree to floating-point reduction
order — while their simulated execution times differ.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AmrConfig, RunSpec, laptop, run_simulation, sphere


def main():
    # One moving sphere; blocks that intersect its surface get refined.
    objects = (
        sphere(center=(0.3, 0.3, 0.3), radius=0.25, move=(0.05, 0.05, 0.0)),
    )

    # The rank grid (npx x npy x npz) must equal nodes x ranks/node, and
    # all variants must share the same root mesh (npx*init_x etc.).
    configs = {
        # MPI-only runs one rank per core: 4 ranks on the laptop node.
        "mpi_only": AmrConfig(
            npx=2, npy=2, npz=1, init_x=1, init_y=1, init_z=2,
            nx=4, ny=4, nz=4, num_vars=4,
            num_tsteps=4, stages_per_ts=4,
            refine_freq=2, checksum_freq=4, max_refine_level=2,
            objects=objects,
        ),
        # Hybrids run 2 ranks x 2 cores.
        "fork_join": AmrConfig(
            npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
            nx=4, ny=4, nz=4, num_vars=4,
            num_tsteps=4, stages_per_ts=4,
            refine_freq=2, checksum_freq=4, max_refine_level=2,
            objects=objects,
        ),
        # The data-flow variant enables the paper's options.
        "tampi_dataflow": AmrConfig(
            npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
            nx=4, ny=4, nz=4, num_vars=4,
            num_tsteps=4, stages_per_ts=4,
            refine_freq=2, checksum_freq=4, max_refine_level=2,
            send_faces=True, separate_buffers=True, max_comm_tasks=8,
            objects=objects,
        ),
    }

    print(f"{'variant':<16} {'total(ms)':>10} {'refine(ms)':>11} "
          f"{'blocks':>7} {'GFLOPS':>7} {'messages':>9}")
    checksums = {}
    for variant, cfg in configs.items():
        rpn = 4 if variant == "mpi_only" else 2
        res = run_simulation(RunSpec(
            config=cfg, machine=laptop(), variant=variant, num_nodes=1,
            ranks_per_node=rpn,
        ))
        checksums[variant] = res.checksums
        print(
            f"{variant:<16} {res.total_time * 1000:>10.3f} "
            f"{res.refine_time * 1000:>11.3f} {res.num_blocks:>7} "
            f"{res.gflops:>7.2f} {res.comm_stats.messages:>9}"
        )

    # Cross-variant functional validation.
    ref = checksums["mpi_only"]
    print("\nchecksum agreement vs MPI-only (max relative difference):")
    for variant in ("fork_join", "tampi_dataflow"):
        worst = 0.0
        for (_, c_ref, _), (_, c_other, _) in zip(ref, checksums[variant]):
            worst = max(
                worst, float(np.max(np.abs(c_ref - c_other) / np.abs(c_ref)))
            )
        print(f"  {variant:<16} {worst:.2e}")

    print(
        "\nnote: with 4^3-cell toy blocks a stencil task costs ~1 us, so "
        "the\ndata-flow variant's per-task overheads dominate here. At the "
        "paper's\nblock sizes it wins — see examples/four_spheres_scaling.py."
    )


if __name__ == "__main__":
    main()

"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on the
simulated cluster.  Each runs exactly once (``rounds=1``) — the quantity of
interest is the *simulated* time/throughput inside the result, not the
wall-clock of the simulator.  Rendered tables are printed and archived
under ``benchmarks/results/``.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir, request):
    """Persist a rendered table/figure next to the benchmarks."""

    def _save(text, name=None):
        name = name or request.node.name
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print("\n" + text)
        return path

    return _save


def bench_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


#: Smaller geometries when REPRO_BENCH_QUICK=1 (used by CI/smoke runs).
QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"

#: Paper-scale sweeps when REPRO_BENCH_FULL=1: the scaling figures extend
#: to 256 scaled nodes (2048 MPI-only ranks), matching the published node
#: range.  Off by default — the top points dominate the suite's wall-clock.
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Worker processes for the sweep engine (REPRO_BENCH_JOBS=N parallelizes
#: every experiment's runs; results are identical to serial execution).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Optional content-addressed result cache (REPRO_BENCH_CACHE=<dir>):
#: rerunning the suite with a warm cache skips the simulations entirely.
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE", "")


@pytest.fixture(scope="session")
def engine():
    """A shared sweep engine for every experiment in the session."""
    from repro.exec import ResultCache, SweepEngine

    cache = ResultCache(CACHE_DIR) if CACHE_DIR else None
    return SweepEngine(jobs=JOBS, cache=cache)

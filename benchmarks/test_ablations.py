"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation removes one mechanism of the data-flow port and measures the
cost on a fixed mid-size workload:

1. cross-stage overlap          (stage_barrier=True removes it)
2. separate buffers             (separate_buffers=False restores miniAMR's
                                 shared-buffer false dependencies)
3. immediate-successor locality (scheduler="fifo" removes the IPC boost)
4. delayed checksum validation  (delayed_checksum=False waits every time)
5. taskified refinement         (taskified_refine_factor=1.0 keeps the
                                 serial control work on the critical path)
"""

import pytest
from conftest import QUICK, bench_once

from repro import RunSpec, marenostrum4_scaled, run_simulation
from repro.bench import TAMPI_OPTS, build_config, four_spheres

NODES = 2 if QUICK else 4
ROOT = (4, 2, 2) if QUICK else (4, 4, 2)
TSTEPS = 2 if QUICK else 3


def tampi_run(checksum_freq=5, **kwargs):
    spec = marenostrum4_scaled(8)
    rpn = 2
    cfg_opts = dict(TAMPI_OPTS)
    cfg_opts.update(kwargs.pop("config_opts", {}))
    cfg = build_config(
        NODES * rpn, ROOT, four_spheres(TSTEPS),
        num_tsteps=TSTEPS, stages_per_ts=10, refine_freq=1,
        checksum_freq=checksum_freq, max_refine_level=2, **cfg_opts,
    )
    return run_simulation(RunSpec(
        config=cfg, machine=marenostrum4_scaled(8),
        variant="tampi_dataflow", num_nodes=NODES, ranks_per_node=rpn,
        **kwargs,
    ))


_baseline = {}


@pytest.fixture
def baseline():
    if "res" not in _baseline:
        _baseline["res"] = tampi_run()
    return _baseline["res"]


def test_ablation_stage_overlap(benchmark, baseline, save_result):
    """Removing cross-stage overlap (a barrier per stage) must cost time —
    quantifying improvement cause (1) of Section V-B."""
    ablated = bench_once(benchmark, tampi_run, stage_barrier=True)
    ratio = ablated.total_time / baseline.total_time
    save_result(
        f"overlap ablation: barrier-per-stage / data-flow = {ratio:.3f}x",
        "ablation_overlap",
    )
    assert ratio > 1.01, ratio


def test_ablation_separate_buffers(benchmark, baseline, save_result):
    """Shared communication buffers across directions create false
    dependencies (the problem --separate_buffers solves, Section IV-A)."""
    ablated = bench_once(
        benchmark, tampi_run, config_opts={"separate_buffers": False}
    )
    ratio = ablated.total_time / baseline.total_time
    save_result(
        f"separate-buffers ablation: shared / separate = {ratio:.3f}x",
        "ablation_separate_buffers",
    )
    # The false dependencies serialize the three directions' communication
    # tasks; at this simulated scale communication is far from the
    # bottleneck, so the measurable effect is small (the paper introduces
    # the option to expose parallelism at 64+ real nodes).
    assert ratio > 0.97, ratio


def test_ablation_locality_scheduler(benchmark, baseline, save_result):
    """FIFO scheduling loses the immediate-successor cache reuse — the IPC
    improvement the paper identifies as cause (4)."""
    ablated = bench_once(benchmark, tampi_run, scheduler="fifo")
    ratio = ablated.total_time / baseline.total_time
    hits_base = sum(s.locality_hits for s in baseline.runtime_stats)
    hits_abl = sum(s.locality_hits for s in ablated.runtime_stats)
    save_result(
        f"scheduler ablation: fifo / locality = {ratio:.3f}x "
        f"(locality hits {hits_base} -> {hits_abl})",
        "ablation_scheduler",
    )
    assert ratio > 1.01, ratio
    assert hits_abl < hits_base


def test_ablation_delayed_checksum(benchmark, save_result):
    """Validating the current stage (full wait) instead of the previous one
    costs time when checksums are frequent (Section IV-C)."""
    delayed = tampi_run(checksum_freq=3)
    strict = bench_once(
        benchmark, tampi_run, checksum_freq=3, delayed_checksum=False
    )
    ratio = strict.total_time / delayed.total_time
    save_result(
        f"checksum ablation: strict / delayed = {ratio:.3f}x "
        f"(checksum every 3 stages)",
        "ablation_delayed_checksum",
    )
    # Strict validation drains the pipeline at every checksum; the delayed
    # variant only waits for the previous stage's data.  Helping-while-
    # blocked keeps the cost of a drain small at this scale, so the margin
    # is modest.
    assert ratio > 0.99, ratio


def test_ablation_taskified_refinement(benchmark, save_result):
    """Keeping all serial refinement control work on the critical path
    (the paper removed ~80% of it by taskifying, Section IV-B).

    Compared noise-free: the control-work delta is a few percent of the
    refinement phase and would otherwise sit inside the jitter.
    """
    NO_NOISE = {"noise_amplitude": 0.0, "noise_spike_rate": 0.0}
    taskified = tampi_run(cost_overrides=NO_NOISE)
    ablated = bench_once(
        benchmark, tampi_run,
        cost_overrides=dict(NO_NOISE, taskified_refine_factor=1.0),
    )
    ratio = ablated.refine_time / taskified.refine_time
    save_result(
        f"refinement ablation: serial-control / taskified refine time "
        f"= {ratio:.3f}x (noise-free)",
        "ablation_refinement",
    )
    # The factor only scales the serial control work; block copies and the
    # exchange dominate the refinement phase (as in the paper, where the
    # exchange is ~70% of it), so the refine-time ratio is well below the
    # paper's 80% total reduction claim.
    assert ratio > 1.02, ratio

"""Benchmark: paper Table I — ranks-per-node study on 4 nodes.

Paper (MareNostrum4, single sphere): both hybrids are worst at 1 rank/node
(a rank spanning both NUMA domains); MPI+OMP improves monotonically toward
16 ranks/node; TAMPI+OSS is best at 2-4 ranks/node and its refinement time
is roughly half the MPI+OMP's at comparable configurations.
"""

from conftest import QUICK, bench_once

from repro.bench import table1


def test_table1_ranks_per_node(benchmark, save_result, engine):
    result = bench_once(benchmark, table1, quick=QUICK, engine=engine)
    save_result(result.text, "table1")

    by_key = {(v, rpn): (t, r, n) for rpn, v, t, r, n in result.rows}

    # 1 rank/node is the worst configuration for both hybrids (NUMA).
    for variant in ("fork_join", "tampi_dataflow"):
        totals = {
            rpn: by_key[(variant, rpn)][0] for rpn in (1, 2, 4, 8, 16)
        }
        assert totals[1] == max(totals.values()), (
            f"{variant}: 1 rank/node should be worst: {totals}"
        )

    # TAMPI+OSS beats fork-join at every configuration, and its returns
    # from adding ranks diminish sharply after 2-4 ranks/node (the paper's
    # curve turns slightly upward there; ours flattens — see
    # EXPERIMENTS.md).
    tampi_totals = {
        rpn: by_key[("tampi_dataflow", rpn)][0] for rpn in (1, 2, 4, 8, 16)
    }
    for rpn in (1, 2, 4, 8, 16):
        assert (
            by_key[("tampi_dataflow", rpn)][0] < by_key[("fork_join", rpn)][0]
    )
    gain_left = tampi_totals[1] - tampi_totals[4]
    gain_right = tampi_totals[4] - tampi_totals[16]
    assert gain_left > 2 * max(gain_right, 0), tampi_totals

    # TAMPI's refinement is substantially faster than fork-join's at the
    # paper's chosen configuration (4 ranks/node).
    fj_refine = by_key[("fork_join", 4)][1]
    tampi_refine = by_key[("tampi_dataflow", 4)][1]
    assert tampi_refine < 0.75 * fj_refine, (
        f"refine: tampi {tampi_refine} vs fork-join {fj_refine}"
    )

"""Benchmark: raw simulator throughput (events/sec and tasks/sec).

The hot-path overhaul (free-listed timeouts, bitmask scheduler queues,
suspended cyclic GC) is justified by this number: how many kernel events
and task executions the simulator retires per wall-clock second.  Three
world sizes off the Fig 4 weak-scaling ladder are measured — ``large`` is
the fig4 4-node TAMPI+OSS configuration used as the overhaul's >= 2x
end-to-end acceptance criterion.

Methodology mirrors ``test_profile_overhead``: ``time.process_time``
(CPU seconds, immune to noisy neighbors), best-of-N over interleaved
repetitions, and a full ``gc.collect()`` before each timed run so no
run inherits another's garbage.  Event/task counts come from a single
profiled run of the same spec — the schedule is deterministic and
profiling does not alter it, so the counts apply verbatim to the
untimed runs.

The report is written to ``benchmarks/results/BENCH_simx_throughput.json``
(the committed copy is the regression baseline).  With
``REPRO_PERF_ENFORCE=1`` — set by the CI ``perf`` job — a drop of more
than 20% in any world's events/sec against the committed baseline fails
the benchmark.
"""

import dataclasses
import gc
import json
import os
import time

from conftest import QUICK, bench_once

from repro.bench.experiments import _scaling_spec
from repro.bench.inputs import weak_root_dims
from repro.core.driver import execute

#: name -> (variant, scaled nodes) points off the Fig 4 weak-scaling
#: ladder.  ``large`` / ``large_mpi`` are the fig4 4-node pair.
WORLDS = {
    "small": ("tampi_dataflow", 1),
    "medium": ("tampi_dataflow", 2),
    "large": ("tampi_dataflow", 4),
    "large_mpi": ("mpi_only", 4),
}

REPS = 2 if QUICK else 3

#: Best-of-N CPU seconds of the seed implementation (commit 0a4038b) for
#: the fig4 pair, measured with this file's exact methodology on the
#: single-core reference host, *interleaved* with runs of the optimized
#: tree so both sides saw the same machine conditions (per-pair seed
#: minima: 11.98/12.84/13.04 vs 5.27-5.32 optimized).  Kept to turn
#: measured wall-clock into the speedup-vs-seed figure recorded in the
#: report; meaningful only on comparable hardware (the CI gate uses the
#: committed *baseline JSON*, not these constants).
SEED_WALL_SECONDS = {"large": 11.98, "large_mpi": 1.65}

#: The authoritative seed comparison for the fig4 ``large`` world:
#: alternating (seed, optimized) subprocess pairs so both trees see the
#: same machine phase — the reference host's throughput drifts by ~25%
#: over tens of minutes, far more than the seed/optimized gap is narrow,
#: so only paired measurement is meaningful.  Each value is a best-of-2
#: ``time.process_time`` of the fig4 4-node tampi_dataflow run after a
#: warmup run, harness identical to ``_measure``.  Recorded verbatim in
#: the report; the per-run ``speedup_vs_seed`` is a live snapshot against
#: the fast-phase seed constant and wobbles with machine phase.
FIG4_INTERLEAVED_PAIRS = [  # (seed_wall, optimized_wall) CPU seconds
    (11.98, 5.31),
    (12.84, 5.32),
    (13.04, 5.27),
    (13.31, 6.09),
    (16.29, 6.63),
]

#: Allowed events/sec regression vs the committed baseline.
REGRESSION_BUDGET = 0.20

ENFORCE = os.environ.get("REPRO_PERF_ENFORCE", "0") == "1"


def _spec(variant, nodes):
    doublings = nodes.bit_length() - 1
    root = weak_root_dims((2, 2, 2), doublings)
    return _scaling_spec(variant, nodes, root, 3, 10, "synthetic")


def _measure(name):
    variant, nodes = WORLDS[name]
    spec = _spec(variant, nodes)
    execute(spec)  # warm imports/caches outside the timed window
    walls = []
    for _ in range(REPS):
        gc.collect()
        t0 = time.process_time()
        execute(spec)
        walls.append(time.process_time() - t0)
    wall = min(walls)
    # Count events/tasks *after* the timed reps: the profiled run retains
    # a large report graph whose mere presence in the older generations
    # would tax the timed runs' end-of-run young-generation sweeps.
    profiled = execute(dataclasses.replace(spec, profile=True))
    events = next(
        m["total"]
        for m in profiled.profile.metrics
        if m["name"] == "kernel.events"
    )
    tasks = sum(rs.tasks_executed for rs in profiled.runtime_stats)
    entry = {
        "variant": variant,
        "nodes": nodes,
        "reps": REPS,
        "events": int(events),
        "tasks": int(tasks),
        "wall_seconds": wall,
        "events_per_sec": events / wall,
        "tasks_per_sec": tasks / wall,
    }
    seed = SEED_WALL_SECONDS.get(name)
    if seed is not None:
        entry["seed_wall_seconds"] = seed
        entry["speedup_vs_seed"] = seed / wall
    return entry


def _measure_all():
    report = {name: _measure(name) for name in WORLDS}
    ratios = [s / o for s, o in FIG4_INTERLEAVED_PAIRS]
    report["fig4_interleaved_seed_comparison"] = {
        "world": "large",
        "pairs_seed_vs_optimized_cpu_seconds": FIG4_INTERLEAVED_PAIRS,
        "speedup_min": min(ratios),
        "speedup_max": max(ratios),
        "method": (
            "alternating seed/optimized subprocess pairs, best-of-2 "
            "process_time each, fig4 4-node tampi_dataflow world"
        ),
    }
    return report


def test_kernel_throughput(benchmark, results_dir, save_result):
    path = results_dir / "BENCH_simx_throughput.json"
    baseline = None
    if path.is_file():  # read the committed baseline before overwriting
        try:
            baseline = json.loads(path.read_text())
        except ValueError:
            baseline = None

    report = bench_once(benchmark, _measure_all)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    lines = ["simulator throughput (best-of-N CPU time)"]
    for name in WORLDS:
        r = report[name]
        speedup = (
            f"  {r['speedup_vs_seed']:.2f}x vs seed"
            if "speedup_vs_seed" in r
            else ""
        )
        lines.append(
            f"  {name:<10} {r['variant']:<15} {r['nodes']:>3}n  "
            f"{r['events_per_sec']:>12,.0f} ev/s  "
            f"{r['tasks_per_sec']:>12,.0f} task/s  "
            f"wall {r['wall_seconds']:.2f}s{speedup}"
        )
    paired = report["fig4_interleaved_seed_comparison"]
    lines.append(
        f"  fig4 interleaved seed comparison: "
        f"{paired['speedup_min']:.2f}-{paired['speedup_max']:.2f}x"
    )
    save_result("\n".join(lines), "kernel_throughput")

    # Sanity: every world retires a nontrivial event volume, and the
    # task-based worlds a nontrivial task volume.
    for name in WORLDS:
        r = report[name]
        assert r["events"] > 10_000, (name, r)
        if r["variant"] != "mpi_only":
            assert r["tasks"] > 1_000, (name, r)

    if ENFORCE and baseline is not None:
        floor = 1.0 - REGRESSION_BUDGET
        for name in WORLDS:
            r = report[name]
            ref = baseline.get(name)
            if not ref or "events_per_sec" not in ref:
                continue
            ratio = r["events_per_sec"] / ref["events_per_sec"]
            assert ratio >= floor, (
                f"{name}: events/sec regressed to {ratio:.0%} of the "
                f"committed baseline ({r['events_per_sec']:,.0f} vs "
                f"{ref['events_per_sec']:,.0f}; budget {floor:.0%})"
            )

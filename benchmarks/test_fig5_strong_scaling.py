"""Benchmark: paper Fig 5 — strong scaling at a fixed problem size.

Paper (1→256 nodes, four spheres, fixed mesh; a 16x smaller input below 16
nodes for memory reasons): TAMPI+OSS performs and scales best everywhere
(1.60x over MPI-only at 256 nodes, 0.88 efficiency); MPI+OMP is slightly
ahead of MPI-only at mid scale but its efficiency falls faster, dropping
below MPI-only at the largest scale.

Scaled run: 8-core nodes, 1→32 nodes by default (8x smaller input below
4 nodes), 1→256 nodes with REPRO_BENCH_FULL=1 (an 8x larger fixed mesh
from 64 nodes up — see EXPERIMENTS.md).
"""

from conftest import FULL, QUICK, bench_once

from repro.bench import strong_scaling

NODES = (
    (1, 2, 4, 8) if QUICK
    else (1, 2, 4, 8, 16, 32, 64, 128, 256) if FULL
    else (1, 2, 4, 8, 16, 32)
)


def test_fig5_strong_scaling(benchmark, save_result, engine):
    result = bench_once(benchmark, strong_scaling, node_counts=NODES,
                        quick=QUICK, engine=engine)

    top = NODES[-1]
    lines = [result.text, "", "derived (paper Fig 5 quantities):"]
    for n in NODES:
        lines.append(
            f"  nodes={n:3d} "
            f"tampi/mpi={result.speedup_vs('tampi_dataflow', 'mpi_only', n):.3f} "
            f"fj/mpi={result.speedup_vs('fork_join', 'mpi_only', n):.3f} "
            f"eff(tampi)={result.efficiency('tampi_dataflow', n):.3f} "
            f"eff(mpi)={result.efficiency('mpi_only', n):.3f}"
        )
    save_result("\n".join(lines), "fig5_strong_scaling")

    # Throughput rises with nodes for every variant (strong scaling works).
    for variant in ("mpi_only", "fork_join", "tampi_dataflow"):
        series = result.series(variant)
        assert series[-1].gflops > series[0].gflops

    # TAMPI+OSS is the fastest variant at the largest scale.
    tampi_top = result.gflops_at("tampi_dataflow", top)
    assert tampi_top > result.gflops_at("mpi_only", top)
    assert tampi_top > result.gflops_at("fork_join", top)

    # Fork-join's efficiency decays at least as fast as MPI-only's at the
    # top of the sweep (the paper's crossover behaviour).
    assert (
        result.efficiency("fork_join", top)
        <= result.efficiency("mpi_only", top) * 1.05
    )

    # TAMPI+OSS keeps the best efficiency at scale.
    assert result.efficiency("tampi_dataflow", top) >= result.efficiency(
        "mpi_only", top
    )

"""Benchmarks: paper Figures 1-3 — trace analyses on 2 nodes.

Fig 1: full-run traces of MPI-only vs TAMPI+OSS at the same time scale;
the non-refinement region of the taskified version is ~1.3x shorter.

Fig 2: the MPI-only timeline alternates computation with communication
windows dominated by ``MPI_Waitany``.

Fig 3: the TAMPI+OSS timeline is dense — cores almost always running
tasks, phases overlapping — with occasional small idle gaps typically
followed by unpack/intra tasks (data just arrived).
"""

import pytest
from conftest import QUICK, bench_once

from repro.bench import trace_runs
from repro.trace import (
    core_utilization,
    mpi_time_by_call,
    overlap_fraction,
    task_time_by_phase,
    unpack_follows_gap_fraction,
)

_cache = {}


@pytest.fixture(scope="module")
def traces():
    if "exp" not in _cache:
        _cache["exp"] = trace_runs(quick=QUICK)
    return _cache["exp"]


def test_fig1_trace_overview(benchmark, traces, save_result):
    exp = bench_once(benchmark, lambda: traces)
    save_result(exp.text, "fig1_traces")
    mpi = exp.results["mpi_only"]
    tampi = exp.results["tampi_dataflow"]

    # Same physics on both sides of the figure.
    assert mpi.num_blocks == tampi.num_blocks

    # The taskified non-refinement region is distinctly shorter
    # (paper: ~1.3x on 2 nodes).
    speedup = mpi.non_refine_time / tampi.non_refine_time
    assert speedup > 1.1, f"non-refinement speedup {speedup:.2f}"

    # Refinement phases exist in both traces.
    assert mpi.refine_time > 0 and tampi.refine_time > 0


def test_fig2_mpi_trace_zoom(benchmark, traces, save_result):
    exp = bench_once(benchmark, lambda: traces)
    mpi = exp.results["mpi_only"]
    calls = mpi_time_by_call(mpi.tracer)
    lines = ["Fig 2 — MPI-only call-time breakdown (all ranks)"]
    for name, t in sorted(calls.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<10} {t:.5f} s")
    save_result("\n".join(lines), "fig2_mpi_zoom")

    # Waitany dominates the MPI time (the green regions of Fig 2) over the
    # non-blocking call costs.
    wait_time = calls.get("Waitany", 0.0) + calls.get("Waitall", 0.0)
    post_time = calls.get("Isend", 0.0) + calls.get("Irecv", 0.0)
    assert wait_time > post_time, calls


def test_fig3_taskified_trace_zoom(benchmark, traces, save_result):
    exp = bench_once(benchmark, lambda: traces)
    tampi = exp.results["tampi_dataflow"]
    cores = 12  # 4 ranks/node on 48-core nodes

    # Mid-run window (outside init/refine phases).
    t0 = tampi.total_time * 0.35
    t1 = tampi.total_time * 0.65
    report = core_utilization(tampi.tracer, 0, cores, t0, t1)
    phases = task_time_by_phase(tampi.tracer)
    stencil_intra = overlap_fraction(tampi.tracer, 0, "intra", "stencil")
    gap_follow = unpack_follows_gap_fraction(tampi.tracer, 0, gap_min=2e-6)

    lines = [
        "Fig 3 — TAMPI+OSS density analysis (rank 0, mid-run window)",
        f"  busy fraction:              {report.busy_fraction:.3f}",
        f"  largest idle gap:           {report.max_gap * 1e3:.3f} ms",
        f"  intra-copy time overlapped by stencils: {stencil_intra:.0%}",
        f"  idle gaps followed by unpack/intra:     {gap_follow:.0%}",
        "  task time by phase: "
        + ", ".join(f"{k}={v:.4f}s" for k, v in sorted(phases.items())),
    ]
    save_result("\n".join(lines), "fig3_tampi_zoom")

    # "The execution is very dense": cores mostly busy.
    assert report.busy_fraction > 0.80, report.busy_fraction
    # "Empty regions take less than three milliseconds."
    assert report.max_gap < 3e-3, report.max_gap
    # Phases overlap: communication tasks coincide with stencils.
    assert stencil_intra > 0.5, stencil_intra
    # Multiple task types executed (the colorful Fig 3 palette).
    assert {"stencil", "pack", "unpack", "intra", "recv", "send"} <= set(
        phases
    )

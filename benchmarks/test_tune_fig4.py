"""Benchmark: tuning the paper's Fig 4 four-node configuration.

The committed :func:`repro.bench.fig4_tune` problem re-opens the two
decisions the paper settles empirically for the 4-node weak-scaling
point — the parallelization variant and Table I's ranks-per-node —
with the paper's own choice (``tampi_dataflow`` at the scaled
ranks-per-node) sitting *inside* the space as the baseline.  The
acceptance property is therefore structural: the tune's top-ranked
configuration is at least as fast as the paper default — strictly
faster, or the default confirmed already-optimal — and the full ranked
evidence lands in ``benchmarks/results/BENCH_tune_fig4.json``.

Deterministic under the fixed seed: this JSON is byte-stable across
reruns, worker counts, and cache states (the CI ``tune`` job diffs it).
"""

from conftest import QUICK, bench_once

from repro.bench import fig4_tune
from repro.tune import run_tune


def test_tune_fig4(benchmark, results_dir, save_result, engine):
    tune = fig4_tune(quick=QUICK)
    report = bench_once(benchmark, run_tune, tune, engine=engine)

    path = results_dir / "BENCH_tune_fig4.json"
    path.write_text(report.to_json())
    save_result(report.ascii().rstrip("\n"), "tune_fig4")

    # Full coverage of the declared space: nothing failed, nothing
    # silently dropped.
    assert report.evaluations == 9
    assert not report.failed and not report.infeasible
    assert report.truncated == 0
    assert report.baseline is not None

    # The paper default lives in the space, so the winner is provably
    # no worse than it.
    gain = report.improvement_over_baseline()
    assert gain is not None and gain >= 0, report.to_dict()

    # The winner keeps the paper's variant choice: data-flow wins the
    # 4-node point in every ranks-per-node column (paper Table I).
    assert report.best["assignment"]["variant"] == "tampi_dataflow"

"""Benchmark: runtime overhead of the engine telemetry bus.

Telemetry must be cheap enough to leave on for entire campaigns: the
budget is **< 5% of engine run time** on the quick config, enforced when
``REPRO_PERF_ENFORCE=1`` (the CI ``telemetry`` job) and recorded
otherwise.  The measured path is the worst case for the bus: a
``jobs=1`` inline sweep, where every emission site — job lifecycle,
``run_start``/``run_end`` spans, stats-store reconciliation — runs in
the engine process itself, with no child-process launch cost to hide
behind.  (The PDES per-window and pool-child emitters guard on the same
``bus is None`` test and write through the same ``O_APPEND``
descriptor, so their per-record cost is the one measured here.)

Methodology — identical to ``test_profile_overhead.py``, built for
noisy single-core CI boxes:

* ``time.process_time`` (CPU seconds), not wall clock;
* cyclic GC collected then paused around each timed run;
* interleaved runs (off, on, off, on, ...) and the ratio of the
  *minimum* of each group — remaining noise is one-sided;
* up to three measurement attempts, keeping the smallest estimate.

The result is written to
``benchmarks/results/BENCH_telemetry_overhead.json`` — the seed of the
telemetry-overhead perf trajectory tracked by ``miniamr-sim trend``.
"""

import gc
import json
import os
import statistics
import time

from conftest import QUICK, bench_once

from repro import AmrConfig, RunSpec, sphere
from repro.exec import RunStatsStore, Sweep, SweepEngine
from repro.obs import TelemetryBus

PAIRS = 3 if QUICK else 5
TSTEPS = 2 if QUICK else 4
ENFORCE = os.environ.get("REPRO_PERF_ENFORCE", "0") == "1"
BUDGET = 0.05


def _specs():
    config = AmrConfig(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=8, ny=8, nz=8, num_vars=2, num_tsteps=TSTEPS,
        stages_per_ts=2, refine_freq=1, checksum_freq=2,
        max_refine_level=1, payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    return [
        RunSpec(config=config, machine="laptop", variant=variant,
                ranks_per_node=2, sched_seed=seed)
        for variant in ("mpi_only", "tampi_dataflow")
        for seed in (0, 1)
    ]


def _timed_sweep(specs, tmp, *, telemetry):
    stats_path = tmp / f"stats-{'on' if telemetry else 'off'}.json"
    if stats_path.exists():
        stats_path.unlink()
    bus = None
    try:
        if telemetry:
            stream = tmp / "telemetry.jsonl"
            if stream.exists():
                stream.unlink()
            bus = TelemetryBus(stream)
        engine = SweepEngine(
            jobs=1, stats=RunStatsStore(stats_path), telemetry=bus,
        )
        gc.collect()
        gc.disable()
        try:
            t0 = time.process_time()
            report = engine.run(Sweep(specs, name="telemetry-overhead"))
            dt = time.process_time() - t0
        finally:
            gc.enable()
        assert report.failed == 0
    finally:
        if bus is not None:
            bus.close()
    return dt


def measure_overhead(tmp):
    specs = _specs()
    _timed_sweep(specs, tmp, telemetry=False)   # warm both paths
    _timed_sweep(specs, tmp, telemetry=True)
    t_off, t_on = [], []
    for _ in range(PAIRS):
        t_off.append(_timed_sweep(specs, tmp, telemetry=False))
        t_on.append(_timed_sweep(specs, tmp, telemetry=True))
    ratios = [b / a for a, b in zip(t_off, t_on)]
    records = sum(1 for _ in open(tmp / "telemetry.jsonl"))
    return {
        "pairs": PAIRS,
        "runs_per_sweep": len(specs),
        "tsteps": TSTEPS,
        "records_per_sweep": records,
        "overhead": min(t_on) / min(t_off) - 1.0,
        "median_pair_overhead": statistics.median(ratios) - 1.0,
        "baseline_cpu_seconds": min(t_off),
    }


ATTEMPTS = 3
TARGET = 0.03  # stop retrying once comfortably under the 5% gate


def _measure(tmp):
    best = None
    for attempt in range(ATTEMPTS):
        r = measure_overhead(tmp)
        if best is None or r["overhead"] < best["overhead"]:
            best = r
        if best["overhead"] < TARGET:
            break
    best["attempts"] = attempt + 1
    best["enforced"] = ENFORCE
    return best


def test_telemetry_overhead(benchmark, results_dir, save_result,
                            tmp_path):
    report = bench_once(benchmark, _measure, tmp_path)
    path = results_dir / "BENCH_telemetry_overhead.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    save_result(
        "telemetry overhead (best-of-N CPU time, bus on vs off)\n"
        f"  inline sweep            {report['overhead']:+7.1%}  "
        f"(pair median {report['median_pair_overhead']:+.1%}, "
        f"{report['pairs']} pairs, "
        f"{report['records_per_sweep']} records/sweep, "
        f"baseline {report['baseline_cpu_seconds']:.2f}s)",
        "telemetry_overhead",
    )

    if ENFORCE:
        assert report["overhead"] < BUDGET, report

"""Benchmark: runtime overhead of ``RunSpec(profile=True)``.

Profiling must be cheap enough to leave on for real experiments: the
acceptance bar is **< 10% of run time** on the small config.  The
measurement uses the golden small geometries at a representative block
size (32^3 cells — the paper's miniAMR runs use blocks at least this
large).  Profiling cost is essentially fixed per task/event (record a
task, classify a gap), while the baseline scales with block volume, so
the miniature 4^3 golden blocks — where a simulated task is a few
microseconds of numpy — would measure a worst case no real experiment
sees.

Methodology — built for noisy single-core CI boxes:

* ``time.process_time`` (CPU seconds), not wall clock: on a shared or
  virtualized machine, wall time measures the neighbors.
* The cyclic GC is collected then paused around each timed run, so
  whole-heap collection pauses don't land on arbitrary runs.
* Longer runs (8 timesteps instead of the goldens' 2): the overhead
  ratio is timestep-invariant, while noise bursts are fixed-size, so
  multi-second runs shrink their relative weight.
* Interleaved runs (off, on, off, on, ...) and the ratio of the
  *minimum* of each group: remaining noise is one-sided (preemption
  and frequency drift only ever add time), so best-of-N estimates the
  intrinsic cost far more stably than means or medians.
* Up to three measurement attempts, keeping the smallest estimate:
  noise bursts cluster for tens of seconds, so a whole attempt can be
  inflated; the smallest observed ratio across attempts is the closest
  look at a quiet window.  A genuinely over-budget implementation
  still fails every attempt.

The per-pair median is archived alongside for context, and the result
is written to ``benchmarks/results/BENCH_profile_overhead.json`` — the
seed of the profiling-overhead perf trajectory.
"""

import dataclasses
import gc
import json
import statistics
import time

from conftest import QUICK, bench_once

from repro.core.driver import execute
from repro.verify import default_golden_specs

# QUICK economizes on run length and pair count, NOT on block size:
# at small blocks the per-event numpy work is microseconds and the
# fixed per-task profiling cost dominates any measurement.
PAIRS = 3 if QUICK else 5
BLOCK = 32
TSTEPS = 4 if QUICK else 8


def _specs(name):
    base = default_golden_specs()[name]
    base = dataclasses.replace(
        base, config=dataclasses.replace(
            base.config,
            nx=BLOCK, ny=BLOCK, nz=BLOCK, num_tsteps=TSTEPS,
        )
    )
    return base, dataclasses.replace(base, profile=True)


def _timed(spec):
    gc.collect()
    gc.disable()
    try:
        t0 = time.process_time()
        result = execute(spec)
        dt = time.process_time() - t0
    finally:
        gc.enable()
    return dt, result


def measure_overhead(name):
    off, on = _specs(name)
    execute(off)
    execute(on)  # warm both paths (imports, allocator, caches)
    t_off, t_on = [], []
    for _ in range(PAIRS):
        dt, _ = _timed(off)
        t_off.append(dt)
        dt, res = _timed(on)
        t_on.append(dt)
    assert res.profile is not None
    ratios = [b / a for a, b in zip(t_off, t_on)]
    return {
        "pairs": PAIRS,
        "block": BLOCK,
        "tsteps": TSTEPS,
        "overhead": min(t_on) / min(t_off) - 1.0,
        "median_pair_overhead": statistics.median(ratios) - 1.0,
        "baseline_cpu_seconds": min(t_off),
    }


ATTEMPTS = 3
TARGET = 0.08  # stop retrying once comfortably under the 10% gate


def _measure_all():
    report = {}
    for name in ("mpi_only_small", "tampi_dataflow_small"):
        best = None
        for attempt in range(ATTEMPTS):
            r = measure_overhead(name)
            if best is None or r["overhead"] < best["overhead"]:
                best = r
            if best["overhead"] < TARGET:
                break
        best["attempts"] = attempt + 1
        report[name] = best
    return report


def test_profile_overhead(benchmark, results_dir, save_result):
    report = bench_once(benchmark, _measure_all)
    path = results_dir / "BENCH_profile_overhead.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    lines = ["profiling overhead (best-of-N CPU time, on vs off)"]
    for name, r in report.items():
        lines.append(
            f"  {name:<24} {r['overhead']:+7.1%}  "
            f"(pair median {r['median_pair_overhead']:+.1%}, "
            f"{r['pairs']} pairs, {r['block']}^3 blocks, "
            f"baseline {r['baseline_cpu_seconds']:.2f}s)"
        )
    save_result("\n".join(lines), "profile_overhead")

    for name, r in report.items():
        assert r["overhead"] < 0.10, (name, r)

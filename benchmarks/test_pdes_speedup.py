"""Benchmark: partitioned-kernel (PDES) wall-clock speedup over serial.

Measures end-to-end wall-clock of the same simulated world executed by
the serial event kernel and by ``pdes_workers`` partitioned workers, on
the Fig 4 weak-scaling ladder extended to 1024 scaled nodes (8192
MPI-only ranks).  Results are checked byte-identical at every scale
before any timing is trusted — a partitioned run that drifts is a bug,
not a data point.

Wall-clock (``time.perf_counter``), *not* CPU time: parallel speedup is
the quantity of interest, and it only exists when the host grants the
workers real cores.  The report therefore records the host's available
core count; the ``>= 2x at >= 64 nodes`` acceptance gate is enforced
with ``REPRO_PERF_ENFORCE=1`` on hosts with at least ``ENFORCE_WORKERS``
cores (the CI ``perf`` job), and is recorded-but-not-asserted on
narrower hosts, mirroring how ``test_kernel_throughput`` treats its
reference-host constants.

The report is written to ``benchmarks/results/BENCH_pdes_speedup.json``.
"""

import json
import os
import time
from dataclasses import replace

from conftest import QUICK, bench_once

from repro.bench.experiments import _scaling_spec
from repro.bench.inputs import weak_root_dims
from repro.core.driver import execute
from repro.simx.parallel.sync import _available_cores

#: Scaled node counts measured (the weak-scaling ladder; 1024 nodes =
#: 8192 MPI-only ranks).  QUICK keeps CI smoke runs short.
SCALES = (16, 64) if QUICK else (16, 64, 256, 1024)

#: Worker counts per scale (1 = the serial baseline).
WORKER_COUNTS = (1, 2, 4)

#: Scales where full-result equivalence is asserted byte for byte.
#: Bounded because serializing an 8192-rank result dominates the run.
EQUIVALENCE_SCALES = (16, 64)

#: The acceptance gate: >= MIN_SPEEDUP at >= GATE_NODES scaled nodes.
MIN_SPEEDUP = 2.0
GATE_NODES = 64
ENFORCE_WORKERS = 4

ENFORCE = os.environ.get("REPRO_PERF_ENFORCE", "0") == "1"


def _spec(nodes, workers=1):
    doublings = nodes.bit_length() - 1
    root = weak_root_dims((2, 2, 2), doublings)
    # One timestep, two stages: enough windows to expose the
    # coordination cost, small enough that 1024 scaled nodes stay
    # benchmarkable.
    return _scaling_spec("mpi_only", nodes, root, 1, 2, "synthetic",
                         pdes_workers=workers)


def _canon(result):
    return json.dumps(result.to_dict(), sort_keys=True)


def _measure_scale(nodes):
    entry = {"ranks": _spec(nodes).config.num_ranks, "workers": {}}
    baseline = None
    serial_wall = None
    for workers in WORKER_COUNTS:
        spec = _spec(nodes, workers)
        t0 = time.perf_counter()
        result = execute(spec)
        wall = time.perf_counter() - t0
        if workers == 1:
            serial_wall = wall
            entry["serial_wall_seconds"] = wall
            if nodes in EQUIVALENCE_SCALES:
                baseline = _canon(result)
            continue
        if baseline is not None:
            assert _canon(result) == baseline, (
                f"{nodes}n: pdes_workers={workers} diverged from serial"
            )
        entry["workers"][str(workers)] = {
            "wall_seconds": wall,
            "speedup": serial_wall / wall,
        }
    return entry


def _measure_all():
    report = {
        "host_cores": _available_cores(),
        "variant": "mpi_only",
        "machine": "marenostrum4_scaled",
        "quick": QUICK,
        "gate": {
            "min_speedup": MIN_SPEEDUP,
            "at_nodes": GATE_NODES,
            "requires_cores": ENFORCE_WORKERS,
        },
        "scales": {},
    }
    for nodes in SCALES:
        report["scales"][str(nodes)] = _measure_scale(nodes)
    gate_scales = [n for n in SCALES if n >= GATE_NODES]
    best = max(
        (
            report["scales"][str(n)]["workers"][str(w)]["speedup"]
            for n in gate_scales
            for w in WORKER_COUNTS
            if w > 1
        ),
        default=0.0,
    )
    report["gate"]["best_speedup_at_gate"] = best
    report["gate"]["met"] = best >= MIN_SPEEDUP
    return report


def test_pdes_speedup(benchmark, results_dir, save_result):
    report = bench_once(benchmark, _measure_all)
    path = results_dir / "BENCH_pdes_speedup.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    lines = [
        f"partitioned kernel speedup (wall clock, "
        f"{report['host_cores']} host cores)"
    ]
    for nodes in SCALES:
        s = report["scales"][str(nodes)]
        per_w = "  ".join(
            f"w{w}: {s['workers'][str(w)]['wall_seconds']:.2f}s "
            f"({s['workers'][str(w)]['speedup']:.2f}x)"
            for w in WORKER_COUNTS if w > 1
        )
        lines.append(
            f"  {nodes:>5}n ({s['ranks']:>5} ranks)  "
            f"serial {s['serial_wall_seconds']:.2f}s  {per_w}"
        )
    gate = report["gate"]
    lines.append(
        f"  gate: >= {gate['min_speedup']:.1f}x at >= {gate['at_nodes']}n"
        f" -> best {gate['best_speedup_at_gate']:.2f}x"
        f" ({'met' if gate['met'] else 'not met'})"
    )
    save_result("\n".join(lines), "pdes_speedup")

    # Timings only mean something if the partitioned runs were real:
    # every measured scale ran every worker count.
    for nodes in SCALES:
        assert set(report["scales"][str(nodes)]["workers"]) == {
            str(w) for w in WORKER_COUNTS if w > 1
        }

    if ENFORCE and report["host_cores"] >= ENFORCE_WORKERS:
        assert gate["met"], (
            f"partitioned kernel reached only "
            f"{gate['best_speedup_at_gate']:.2f}x at >= {GATE_NODES} "
            f"scaled nodes (target {MIN_SPEEDUP:.1f}x) on a "
            f"{report['host_cores']}-core host"
        )

"""Benchmark: orchestration overhead of the design-space tuner.

``run_tune`` must cost (almost) nothing beyond the candidate runs it
drives: the budget is **< 10% over a raw sweep of the identical
specs**, enforced when ``REPRO_PERF_ENFORCE=1`` (the CI ``tune`` job)
and recorded otherwise.  The comparator is exact — the same profiled
baseline + candidate RunSpecs the tuner materializes, submitted as one
:class:`~repro.exec.Sweep` on an identical engine — so the measured
delta is purely the tuner's own work: space enumeration, strategy
bookkeeping, attribution reads, and report assembly.

Methodology — identical to ``test_telemetry_overhead.py``, built for
noisy single-core CI boxes:

* ``time.process_time`` (CPU seconds), not wall clock;
* cyclic GC collected then paused around each timed run;
* interleaved runs (sweep, tune, sweep, tune, ...) and the ratio of
  the *minimum* of each group — remaining noise is one-sided;
* up to three measurement attempts, keeping the smallest estimate.

The result is written to ``benchmarks/results/BENCH_tune_overhead.json``
— the seed of the tune-overhead perf trajectory tracked by
``miniamr-sim trend``.
"""

import gc
import json
import os
import statistics
import time
from dataclasses import replace

from conftest import QUICK, bench_once

from repro import AmrConfig, RunSpec, sphere
from repro.exec import Sweep, SweepEngine
from repro.tune import TuneSpec, enumerate_space, materialize, run_tune

PAIRS = 3 if QUICK else 5
TSTEPS = 2 if QUICK else 4
ENFORCE = os.environ.get("REPRO_PERF_ENFORCE", "0") == "1"
BUDGET = 0.10


def _tune():
    config = AmrConfig(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=8, ny=8, nz=8, num_vars=2, num_tsteps=TSTEPS,
        stages_per_ts=2, refine_freq=1, checksum_freq=2,
        max_refine_level=1, payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    base = RunSpec(
        config=config, machine="laptop", variant="tampi_dataflow",
        ranks_per_node=2,
    )
    return TuneSpec(
        base=base,
        space={
            "variant": ("mpi_only", "fork_join", "tampi_dataflow"),
            "scheduler": ("locality", "fifo"),
        },
        name="tune-overhead",
    )


def _comparator_specs(tune):
    """Exactly the runs the tuner performs, as one flat sweep."""
    specs = [replace(tune.base, profile=True)]
    specs.extend(
        replace(materialize(tune, assignment), profile=True)
        for assignment in enumerate_space(tune.space)
    )
    return specs


def _timed(fn):
    gc.collect()
    gc.disable()
    try:
        t0 = time.process_time()
        fn()
        return time.process_time() - t0
    finally:
        gc.enable()


def measure_overhead():
    tune = _tune()
    specs = _comparator_specs(tune)

    def raw_sweep():
        report = SweepEngine(jobs=1).run(
            Sweep(specs, name="tune-overhead-raw")
        )
        assert report.failed == 0

    def tuned():
        report = run_tune(tune, engine=SweepEngine(jobs=1))
        assert not report.failed
        assert report.evaluations == len(specs) - 1

    raw_sweep()   # warm both paths
    tuned()
    t_raw, t_tune = [], []
    for _ in range(PAIRS):
        t_raw.append(_timed(raw_sweep))
        t_tune.append(_timed(tuned))
    ratios = [b / a for a, b in zip(t_raw, t_tune)]
    return {
        "pairs": PAIRS,
        "candidates": len(specs) - 1,
        "tsteps": TSTEPS,
        "overhead": min(t_tune) / min(t_raw) - 1.0,
        "median_pair_overhead": statistics.median(ratios) - 1.0,
        "baseline_cpu_seconds": min(t_raw),
    }


ATTEMPTS = 3
TARGET = 0.06  # stop retrying once comfortably under the 10% gate


def _measure():
    best = None
    for attempt in range(ATTEMPTS):
        r = measure_overhead()
        if best is None or r["overhead"] < best["overhead"]:
            best = r
        if best["overhead"] < TARGET:
            break
    best["attempts"] = attempt + 1
    best["enforced"] = ENFORCE
    return best


def test_tune_overhead(benchmark, results_dir, save_result):
    report = bench_once(benchmark, _measure)
    path = results_dir / "BENCH_tune_overhead.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    save_result(
        "tune orchestration overhead (best-of-N CPU time, "
        "run_tune vs raw sweep of identical specs)\n"
        f"  grid tune               {report['overhead']:+7.1%}  "
        f"(pair median {report['median_pair_overhead']:+.1%}, "
        f"{report['pairs']} pairs, "
        f"{report['candidates']} candidates, "
        f"baseline {report['baseline_cpu_seconds']:.2f}s)",
        "tune_overhead",
    )

    if ENFORCE:
        assert report["overhead"] < BUDGET, report

"""Benchmark: paper Fig 4 — weak scaling of the three variants.

Paper (4→256 MareNostrum4 nodes, four spheres, one initial block per
MPI-only rank, blocks doubling with nodes): TAMPI+OSS has the highest
throughput everywhere, its advantage over MPI-only *grows* with scale
(1.50x at 128-256 nodes); MPI+OMP never exceeds ~1.06x and trails at small
node counts; every variant's NR (no-refinement) efficiency exceeds its
total efficiency.

Scaled run: 8-core nodes, 1→32 nodes by default, 1→256 nodes — the
paper's full range — with REPRO_BENCH_FULL=1 (see EXPERIMENTS.md for the
mapping and the measured 64–256-node points).
"""

from conftest import FULL, QUICK, bench_once

from repro.bench import weak_scaling

NODES = (
    (1, 2, 4, 8) if QUICK
    else (1, 2, 4, 8, 16, 32, 64, 128, 256) if FULL
    else (1, 2, 4, 8, 16, 32)
)


def test_fig4_weak_scaling(benchmark, save_result, engine):
    result = bench_once(benchmark, weak_scaling, node_counts=NODES,
                        quick=QUICK, engine=engine)

    top = NODES[-1]
    lines = [result.text, "", "derived (paper Fig 4 quantities):"]
    for n in NODES:
        lines.append(
            f"  nodes={n:3d} tampi/mpi={result.speedup_vs('tampi_dataflow', 'mpi_only', n):.3f} "
            f"fj/mpi={result.speedup_vs('fork_join', 'mpi_only', n):.3f} "
            f"eff(tampi)={result.efficiency('tampi_dataflow', n):.3f} "
            f"eff(mpi)={result.efficiency('mpi_only', n):.3f} "
            f"effNR(tampi)={result.efficiency('tampi_dataflow', n, non_refine=True):.3f}"
        )
    save_result("\n".join(lines), "fig4_weak_scaling")

    # TAMPI+OSS wins at scale, and the advantage grows with node count.
    speedups = [
        result.speedup_vs("tampi_dataflow", "mpi_only", n) for n in NODES
    ]
    assert speedups[-1] > 1.05, speedups
    assert speedups[-1] >= speedups[0], speedups

    # Fork-join never gets far above MPI-only (paper: <= 1.06x).
    fj = [result.speedup_vs("fork_join", "mpi_only", n) for n in NODES]
    assert max(fj) < 1.15, fj
    # ...and TAMPI+OSS beats fork-join at scale.
    assert speedups[-1] > fj[-1]

    # NR efficiency exceeds total efficiency for TAMPI+OSS (refinement is
    # the non-scaling part).
    eff = result.efficiency("tampi_dataflow", top)
    eff_nr = result.efficiency("tampi_dataflow", top, non_refine=True)
    assert eff_nr >= eff, (eff, eff_nr)

    # TAMPI+OSS scales at least as efficiently as MPI-only.
    assert eff >= result.efficiency("mpi_only", top) * 0.98

"""Benchmark: paper Table II — ``--max_comm_tasks`` granularity sweep.

Paper (64 nodes, four spheres): non-refinement time is a shallow U over
the number of communication tasks per neighbor and direction — one task
starves parallelism, the *all* configuration (one message per face) pays
per-message overheads; 4-16 is the sweet region and the paper settles on 8.
"""

from conftest import QUICK, bench_once

from repro.bench import table2


def test_table2_comm_tasks(benchmark, save_result, engine):
    result = bench_once(benchmark, table2, quick=QUICK, engine=engine)
    save_result(result.text, "table2")

    times = dict(result.rows)
    sweet = min(times["4"], times["8"], times["16"])

    # The sweet region beats the single-task configuration...
    assert sweet <= times["1"], times
    # ...and beats (or at least matches) one-message-per-face.
    assert sweet <= times["all"], times
    # The whole sweep stays within a modest band (shallow U, as published:
    # 612.5 .. 594.9 .. 627.5 — about 5%).
    worst = max(times.values())
    assert worst / sweet < 1.35, times
